// Tests for the deterministic step-level scheduler, and seed-driven
// adversarial-schedule property sweeps over the whole object zoo. These
// are the strongest concurrency tests in the repository: every seed is a
// distinct primitive-granularity interleaving, and failures reproduce
// exactly (print the seed).
#include "sim/stepper.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "base/kmath.hpp"
#include "base/test_and_set.hpp"
#include "core/approx.hpp"
#include "core/kmult_counter.hpp"
#include "core/kmult_counter_corrected.hpp"
#include "core/kmult_max_register.hpp"
#include "exact/bounded_max_register.hpp"
#include "exact/aach_counter.hpp"
#include "exact/collect_counter.hpp"
#include "exact/snapshot.hpp"
#include "sim/history.hpp"
#include "sim/lin_check.hpp"
#include "sim/workload.hpp"

namespace approx::sim {
namespace {

// ----------------------------------------------------------------------
// Scheduler mechanics
// ----------------------------------------------------------------------

TEST(StepScheduler, RunsAllProgramsToCompletion) {
  std::vector<int> ran(4, 0);
  base::TasBit bit;  // gives each program at least one yield point
  std::vector<std::function<void()>> programs;
  for (int p = 0; p < 4; ++p) {
    programs.emplace_back([&, p] {
      (void)bit.read();
      ran[static_cast<std::size_t>(p)] = 1;
    });
  }
  StepScheduler::run(std::move(programs), /*seed=*/1);
  for (int p = 0; p < 4; ++p) EXPECT_EQ(ran[static_cast<std::size_t>(p)], 1);
}

TEST(StepScheduler, ProgramsWithoutPrimitivesFinish) {
  int x = 0;
  StepScheduler::run({[&] { x = 42; }}, /*seed=*/3);
  EXPECT_EQ(x, 42);
}

TEST(StepScheduler, SameSeedSameExecution) {
  auto run_once = [](std::uint64_t seed) {
    core::KMultCounterCorrected counter(3, 2);
    std::vector<std::uint64_t> reads(3 * 20);
    std::vector<std::function<void()>> programs;
    for (unsigned pid = 0; pid < 3; ++pid) {
      programs.emplace_back([&, pid] {
        for (int i = 0; i < 20; ++i) {
          counter.increment(pid);
          reads[pid * 20 + static_cast<unsigned>(i)] = counter.read(pid);
        }
      });
    }
    StepScheduler::run(std::move(programs), seed);
    return reads;
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_EQ(run_once(99), run_once(99));
}

TEST(StepScheduler, DifferentSeedsExploreDifferentSchedules) {
  auto run_once = [](std::uint64_t seed) {
    core::KMultCounterCorrected counter(3, 2);
    std::vector<std::uint64_t> reads(3 * 30);
    std::vector<std::function<void()>> programs;
    for (unsigned pid = 0; pid < 3; ++pid) {
      programs.emplace_back([&, pid] {
        for (int i = 0; i < 30; ++i) {
          counter.increment(pid);
          reads[pid * 30 + static_cast<unsigned>(i)] = counter.read(pid);
        }
      });
    }
    StepScheduler::run(std::move(programs), seed);
    return reads;
  };
  const auto baseline = run_once(1);
  bool any_different = false;
  for (std::uint64_t seed = 2; seed <= 12 && !any_different; ++seed) {
    any_different = run_once(seed) != baseline;
  }
  EXPECT_TRUE(any_different)
      << "12 seeds produced identical executions — scheduler not varying";
}

TEST(StepScheduler, TasBitHasUniqueWinnerUnderEverySchedule) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    base::TasBit bit;
    std::vector<int> won(6, 0);
    std::vector<std::function<void()>> programs;
    for (unsigned p = 0; p < 6; ++p) {
      programs.emplace_back([&, p] { won[p] = bit.test_and_set() ? 0 : 1; });
    }
    StepScheduler::run(std::move(programs), seed);
    int winners = 0;
    for (int w : won) winners += w;
    ASSERT_EQ(winners, 1) << "seed " << seed;
  }
}

TEST(StepScheduler, StarvationPickerRunsVictimLast) {
  // The victim's single step must happen after both aggressors finish.
  std::vector<int> order;
  base::TasBit bit;
  std::vector<std::function<void()>> programs;
  programs.emplace_back([&] {  // pid 0: the victim
    (void)bit.read();
    order.push_back(0);
  });
  for (unsigned p = 1; p <= 2; ++p) {
    programs.emplace_back([&, p] {
      for (int i = 0; i < 5; ++i) (void)bit.read();
      order.push_back(static_cast<int>(p));
    });
  }
  StepScheduler::run(std::move(programs),
                     StepScheduler::starvation_picker(0, /*seed=*/5));
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order.back(), 0);  // victim finished last
}

// ----------------------------------------------------------------------
// Property sweeps: counters under adversarial schedules
// ----------------------------------------------------------------------

class CounterScheduleSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CounterScheduleSweep, CorrectedCounterHistoryChecks) {
  const std::uint64_t seed = GetParam();
  constexpr unsigned kN = 4;
  const std::uint64_t k = 2;
  core::KMultCounterCorrected counter(kN, k);
  HistoryRecorder history(kN);
  std::vector<std::function<void()>> programs;
  for (unsigned pid = 0; pid < kN; ++pid) {
    programs.emplace_back([&, pid] {
      Rng rng(seed * 7919 + pid);
      for (int i = 0; i < 40; ++i) {
        if (rng.chance(0.3)) {
          history.record_read(pid, [&] { return counter.read(pid); });
        } else {
          history.record_increment(pid, [&] { counter.increment(pid); });
        }
      }
    });
  }
  StepScheduler::run(std::move(programs), seed);

  const auto result = check_counter_history(history.merged(), k);
  ASSERT_TRUE(result.ok) << "seed " << seed << ": " << result.violation;
  // Prefix invariant (Lemma III.2) at quiescence.
  const std::uint64_t first_unset = counter.first_unset_switch_unrecorded();
  for (std::uint64_t j = 0; j < first_unset; ++j) {
    ASSERT_TRUE(counter.switch_set_unrecorded(j)) << "seed " << seed;
  }
}

TEST_P(CounterScheduleSweep, FaithfulCounterPrefixInvariant) {
  // The faithful variant's band has the documented bootstrap transient,
  // but Lemma III.2 (prefix order of switch setting) must hold under
  // every schedule.
  const std::uint64_t seed = GetParam();
  constexpr unsigned kN = 4;
  core::KMultCounter counter(kN, 2);
  std::vector<std::function<void()>> programs;
  for (unsigned pid = 0; pid < kN; ++pid) {
    programs.emplace_back([&, pid] {
      for (int i = 0; i < 60; ++i) counter.increment(pid);
    });
  }
  StepScheduler::run(std::move(programs), seed);
  const std::uint64_t first_unset = counter.first_unset_switch_unrecorded();
  for (std::uint64_t j = 0; j < first_unset; ++j) {
    ASSERT_TRUE(counter.switch_set_unrecorded(j)) << "seed " << seed;
  }
  ASSERT_FALSE(counter.switch_set_unrecorded(first_unset + 1));
}

TEST_P(CounterScheduleSweep, ExactCollectHistoryChecks) {
  const std::uint64_t seed = GetParam();
  constexpr unsigned kN = 3;
  exact::CollectCounter counter(kN);
  HistoryRecorder history(kN);
  std::vector<std::function<void()>> programs;
  for (unsigned pid = 0; pid < kN; ++pid) {
    programs.emplace_back([&, pid] {
      Rng rng(seed * 31 + pid);
      for (int i = 0; i < 40; ++i) {
        if (rng.chance(0.4)) {
          history.record_read(pid, [&] { return counter.read(); });
        } else {
          history.record_increment(pid, [&] { counter.increment(pid); });
        }
      }
    });
  }
  StepScheduler::run(std::move(programs), seed);
  const auto result = check_counter_history(history.merged(), 1);
  ASSERT_TRUE(result.ok) << "seed " << seed << ": " << result.violation;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CounterScheduleSweep,
                         ::testing::Range<std::uint64_t>(0, 25));

// ----------------------------------------------------------------------
// Property sweeps: max registers under adversarial schedules
// ----------------------------------------------------------------------

class MaxRegScheduleSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxRegScheduleSweep, ExactBoundedHistoryChecks) {
  const std::uint64_t seed = GetParam();
  constexpr unsigned kN = 4;
  exact::BoundedMaxRegister reg(1 << 12);
  HistoryRecorder history(kN);
  std::vector<std::function<void()>> programs;
  for (unsigned pid = 0; pid < kN; ++pid) {
    programs.emplace_back([&, pid] {
      Rng rng(seed * 131 + pid);
      for (int i = 0; i < 30; ++i) {
        if (rng.chance(0.5)) {
          history.record_read(pid, [&] { return reg.read(); });
        } else {
          const std::uint64_t v = rng.below(1 << 12);
          history.record_write(pid, v, [&] { reg.write(v); });
        }
      }
    });
  }
  StepScheduler::run(std::move(programs), seed);
  const auto result = check_max_register_history(history.merged(), 1);
  ASSERT_TRUE(result.ok) << "seed " << seed << ": " << result.violation;
}

TEST_P(MaxRegScheduleSweep, KMultBoundedHistoryChecks) {
  const std::uint64_t seed = GetParam();
  constexpr unsigned kN = 4;
  const std::uint64_t k = 3;
  core::KMultMaxRegister reg(1 << 16, k);
  HistoryRecorder history(kN);
  std::vector<std::function<void()>> programs;
  for (unsigned pid = 0; pid < kN; ++pid) {
    programs.emplace_back([&, pid] {
      Rng rng(seed * 733 + pid);
      for (int i = 0; i < 30; ++i) {
        if (rng.chance(0.5)) {
          history.record_read(pid, [&] { return reg.read(); });
        } else {
          const std::uint64_t v = 1 + rng.below((1 << 16) - 1);
          history.record_write(pid, v, [&] { reg.write(v); });
        }
      }
    });
  }
  StepScheduler::run(std::move(programs), seed);
  const auto result = check_max_register_history(history.merged(), k);
  ASSERT_TRUE(result.ok) << "seed " << seed << ": " << result.violation;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxRegScheduleSweep,
                         ::testing::Range<std::uint64_t>(0, 25));

// ----------------------------------------------------------------------
// Snapshot atomicity under adversarial schedules
// ----------------------------------------------------------------------

class SnapshotScheduleSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SnapshotScheduleSweep, ViewsFormAChain) {
  // With monotone per-component updates, all scanned views must be
  // pairwise comparable — the definitive atomicity witness for the
  // double-collect + embedded-view helping logic.
  const std::uint64_t seed = GetParam();
  constexpr unsigned kWriters = 2;
  constexpr unsigned kScanners = 2;
  exact::Snapshot snap(kWriters + kScanners);
  std::vector<std::vector<std::uint64_t>> views;
  std::vector<std::function<void()>> programs;
  for (unsigned pid = 0; pid < kWriters; ++pid) {
    programs.emplace_back([&, pid] {
      for (std::uint64_t v = 1; v <= 6; ++v) snap.update(pid, v);
    });
  }
  for (unsigned s = 0; s < kScanners; ++s) {
    programs.emplace_back([&] {
      for (int i = 0; i < 5; ++i) views.push_back(snap.scan());
    });
  }
  StepScheduler::run(std::move(programs), seed);

  auto leq = [](const std::vector<std::uint64_t>& a,
                const std::vector<std::uint64_t>& b) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i] > b[i]) return false;
    }
    return true;
  };
  for (std::size_t i = 0; i < views.size(); ++i) {
    for (std::size_t j = i + 1; j < views.size(); ++j) {
      ASSERT_TRUE(leq(views[i], views[j]) || leq(views[j], views[i]))
          << "seed " << seed << ": incomparable views " << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotScheduleSweep,
                         ::testing::Range<std::uint64_t>(0, 20));

// ----------------------------------------------------------------------
// Crash-stop behaviour (fault injection)
// ----------------------------------------------------------------------

class CrashStopSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrashStopSweep, SurvivorsStayAccurateAfterCrashes) {
  // Processes 1 and 2 "crash" (stop taking steps — in an asynchronous
  // system a crash is indistinguishable from an infinite stall) after a
  // seed-dependent number of increments. The survivor's reads must stay
  // banded w.r.t. the increments that actually completed.
  const std::uint64_t seed = GetParam();
  constexpr unsigned kN = 3;
  const std::uint64_t k = 2;
  core::KMultCounterCorrected counter(kN, k);
  HistoryRecorder history(kN);
  std::vector<std::function<void()>> programs;
  for (unsigned pid = 1; pid < kN; ++pid) {
    programs.emplace_back([&, pid] {
      const auto crash_after = 5 + (seed * (pid + 3)) % 40;
      for (std::uint64_t i = 0; i < crash_after; ++i) {
        history.record_increment(pid, [&] { counter.increment(pid); });
      }
      // crash: simply stops issuing steps
    });
  }
  programs.emplace_back([&] {  // the surviving reader/writer, pid 0
    Rng rng(seed);
    for (int i = 0; i < 60; ++i) {
      if (rng.chance(0.4)) {
        history.record_read(0, [&] { return counter.read(0); });
      } else {
        history.record_increment(0, [&] { counter.increment(0); });
      }
    }
  });
  StepScheduler::run(std::move(programs), seed);

  const auto result = check_counter_history(history.merged(), k);
  ASSERT_TRUE(result.ok) << "seed " << seed << ": " << result.violation;
  // Quiescent read agrees with the exact number of completed increments.
  std::uint64_t completed = 0;
  for (const auto& record : history.merged()) {
    if (record.type == OpType::kIncrement) ++completed;
  }
  EXPECT_TRUE(core::within_mult_band(counter.read(0), completed, k));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashStopSweep,
                         ::testing::Range<std::uint64_t>(0, 20));


// ----------------------------------------------------------------------
// Snapshot helping branch, engaged deterministically
// ----------------------------------------------------------------------

TEST(SnapshotHelping, EmbeddedViewReturnedUnderScannerStarvedSchedule) {
  // The scanner gets one step per 24; the writer updates continuously.
  // During one scan the writer completes ≥ 2 full updates, forcing the
  // scan to return the writer's embedded view (the Afek et al. helping
  // branch). The returned views must still form a chain.
  exact::Snapshot snap(2);
  std::vector<std::vector<std::uint64_t>> views;
  std::vector<std::function<void()>> programs;
  programs.emplace_back([&] {  // pid 0: writer
    for (std::uint64_t v = 1; v <= 400; ++v) snap.update(0, v);
  });
  programs.emplace_back([&] {  // pid 1: scanner
    for (int i = 0; i < 8; ++i) views.push_back(snap.scan());
  });

  auto grants = std::make_shared<std::uint64_t>(0);
  SchedulePicker starve_scanner =
      [grants](const std::vector<unsigned>& runnable) -> unsigned {
    *grants += 1;
    bool scanner = false;
    bool writer = false;
    for (unsigned pid : runnable) {
      scanner |= (pid == 1);
      writer |= (pid == 0);
    }
    if (scanner && (!writer || *grants % 24 == 0)) return 1;
    return 0;
  };
  StepScheduler::run(std::move(programs), starve_scanner);

  EXPECT_GE(snap.helped_scans_unrecorded(), 1u)
      << "the starved scanner never borrowed an embedded view — "
         "the adversarial schedule needs retuning";
  auto leq = [](const std::vector<std::uint64_t>& a,
                const std::vector<std::uint64_t>& b) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i] > b[i]) return false;
    }
    return true;
  };
  for (std::size_t i = 1; i < views.size(); ++i) {
    ASSERT_TRUE(leq(views[i - 1], views[i])) << i;
  }
}

// ----------------------------------------------------------------------
// AACH counter under adversarial schedules
// ----------------------------------------------------------------------

class AachScheduleSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AachScheduleSweep, HistoryChecksExactly) {
  const std::uint64_t seed = GetParam();
  constexpr unsigned kN = 3;
  exact::AachCounter counter(kN);
  HistoryRecorder history(kN);
  std::vector<std::function<void()>> programs;
  for (unsigned pid = 0; pid < kN; ++pid) {
    programs.emplace_back([&, pid] {
      Rng rng(seed * 57 + pid);
      for (int i = 0; i < 25; ++i) {
        if (rng.chance(0.35)) {
          history.record_read(pid, [&] { return counter.read(); });
        } else {
          history.record_increment(pid, [&] { counter.increment(pid); });
        }
      }
    });
  }
  StepScheduler::run(std::move(programs), seed);
  const auto result = check_counter_history(history.merged(), 1);
  ASSERT_TRUE(result.ok) << "seed " << seed << ": " << result.violation;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AachScheduleSweep,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace approx::sim
