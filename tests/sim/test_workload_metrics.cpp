// Tests for the workload driver, RNG, history recorder and metrics.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/history.hpp"
#include "sim/metrics.hpp"
#include "sim/workload.hpp"

namespace approx::sim {
namespace {

// ----------------------------------------------------------------------
// Rng
// ----------------------------------------------------------------------

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng rng(0);
  EXPECT_NE(rng.next(), rng.next());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_LT(rng.below(17), 17u);
    ASSERT_EQ(rng.below(1), 0u);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    ASSERT_FALSE(rng.chance(0.0));
    ASSERT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.25, 0.02);
}

TEST(Rng, LogUniformInRange) {
  Rng rng(13);
  for (std::uint64_t max_value : {1ull, 2ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 500; ++i) {
      const std::uint64_t v = rng.log_uniform(max_value);
      ASSERT_GE(v, 1u) << max_value;
      ASSERT_LE(v, max_value) << max_value;
    }
  }
}

TEST(Rng, LogUniformCoversMagnitudes) {
  Rng rng(17);
  const std::uint64_t max_value = std::uint64_t{1} << 32;
  bool small = false;
  bool large = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.log_uniform(max_value);
    small |= v < 1024;
    large |= v > (std::uint64_t{1} << 22);
  }
  EXPECT_TRUE(small);  // a uniform draw would essentially never be small
  EXPECT_TRUE(large);
}

// ----------------------------------------------------------------------
// HistoryRecorder
// ----------------------------------------------------------------------

TEST(HistoryRecorder, ClockIsStrictlyIncreasing) {
  HistoryRecorder history(1);
  std::uint64_t previous = history.tick();
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t now = history.tick();
    ASSERT_GT(now, previous);
    previous = now;
  }
}

TEST(HistoryRecorder, RecordWrappersStampInsideInterval) {
  HistoryRecorder history(2);
  history.record_increment(0, [] {});
  const std::uint64_t result =
      history.record_read(1, [] { return std::uint64_t{42}; });
  EXPECT_EQ(result, 42u);
  const auto merged = history.merged();
  ASSERT_EQ(merged.size(), 2u);
  for (const auto& record : merged) {
    EXPECT_LT(record.invoke, record.response);
  }
}

TEST(HistoryRecorder, MergesAllProcesses) {
  HistoryRecorder history(3);
  history.record_increment(0, [] {});
  history.record_increment(1, [] {});
  history.record_write(2, 5, [] {});
  EXPECT_EQ(history.merged().size(), 3u);
}

// ----------------------------------------------------------------------
// Workload driver
// ----------------------------------------------------------------------

TEST(Workload, CountsAddUp) {
  KMultCounterAdapter counter(4, 2);
  WorkloadConfig config;
  config.num_threads = 4;
  config.ops_per_thread = 2500;
  config.read_fraction = 0.2;
  const WorkloadResult result = run_counter_workload(counter, config);
  EXPECT_EQ(result.total_ops(), 10000u);
  EXPECT_EQ(result.increments + result.reads, 10000u);
  EXPECT_EQ(result.writes, 0u);
  EXPECT_GT(result.increments, 0u);
  EXPECT_GT(result.reads, 0u);
  EXPECT_GT(result.total_steps(), 0u);
  EXPECT_GT(result.wall_seconds, 0.0);
  EXPECT_GT(result.amortized_steps(), 0.0);
  EXPECT_GT(result.ops_per_second(), 0.0);
}

TEST(Workload, ReadFractionRespected) {
  CollectCounterAdapter counter(2);
  WorkloadConfig config;
  config.num_threads = 2;
  config.ops_per_thread = 10000;
  config.read_fraction = 0.3;
  const WorkloadResult result = run_counter_workload(counter, config);
  const double fraction = static_cast<double>(result.reads) /
                          static_cast<double>(result.total_ops());
  EXPECT_NEAR(fraction, 0.3, 0.03);
}

TEST(Workload, PureIncrementWorkload) {
  CollectCounterAdapter counter(2);
  WorkloadConfig config;
  config.num_threads = 2;
  config.ops_per_thread = 1000;
  config.read_fraction = 0.0;
  const WorkloadResult result = run_counter_workload(counter, config);
  EXPECT_EQ(result.reads, 0u);
  EXPECT_EQ(result.increments, 2000u);
  // CollectCounter increments are exactly one step each.
  EXPECT_EQ(result.mutate_steps, 2000u);
  EXPECT_EQ(result.read_steps, 0u);
}

TEST(Workload, MaxRegisterWorkloadClassifiesWrites) {
  KMultMaxRegisterAdapter reg(1 << 20, 2);
  WorkloadConfig config;
  config.num_threads = 3;
  config.ops_per_thread = 2000;
  config.read_fraction = 0.5;
  config.max_write_value = (1 << 20) - 1;
  const WorkloadResult result = run_max_register_workload(reg, config);
  EXPECT_EQ(result.increments, 0u);
  EXPECT_GT(result.writes, 0u);
  EXPECT_GT(result.reads, 0u);
  EXPECT_EQ(result.total_ops(), 6000u);
}

TEST(Workload, HistoryCapturePassesChecker) {
  KMultCounterAdapter counter(3, 2);
  HistoryRecorder history(3);
  WorkloadConfig config;
  config.num_threads = 3;
  config.ops_per_thread = 1500;
  config.read_fraction = 0.2;
  const WorkloadResult result =
      run_counter_workload(counter, config, &history);
  EXPECT_EQ(history.merged().size(), result.total_ops());
}

// ----------------------------------------------------------------------
// Stats and Table
// ----------------------------------------------------------------------

TEST(StatsTest, EmptySample) {
  const Stats stats = Stats::of({});
  EXPECT_EQ(stats.count, 0u);
  EXPECT_EQ(stats.mean, 0.0);
}

TEST(StatsTest, SingleSample) {
  const Stats stats = Stats::of({5.0});
  EXPECT_EQ(stats.count, 1u);
  EXPECT_EQ(stats.min, 5.0);
  EXPECT_EQ(stats.max, 5.0);
  EXPECT_EQ(stats.mean, 5.0);
  EXPECT_EQ(stats.p50, 5.0);
  EXPECT_EQ(stats.p99, 5.0);
}

TEST(StatsTest, KnownDistribution) {
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(static_cast<double>(i));
  const Stats stats = Stats::of(samples);
  EXPECT_EQ(stats.min, 1.0);
  EXPECT_EQ(stats.max, 100.0);
  EXPECT_NEAR(stats.mean, 50.5, 1e-9);
  EXPECT_NEAR(stats.p50, 50.0, 1.0);
  EXPECT_NEAR(stats.p99, 99.0, 1.0);
}

TEST(TableTest, FormatsAlignedColumns) {
  Table table({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"longer", "23"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  EXPECT_NE(text.find("--"), std::string::npos);
  // 4 lines: header, rule, 2 rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.14159, 4), "3.1416");
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
}

}  // namespace
}  // namespace approx::sim
