// Tests for the linearizability checkers, using hand-crafted histories
// with known verdicts. Timestamps are arbitrary increasing integers.
#include "sim/lin_check.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace approx::sim {
namespace {

OpRecord inc(unsigned pid, std::uint64_t invoke, std::uint64_t response) {
  return {OpType::kIncrement, pid, 0, 0, invoke, response};
}

OpRecord read(unsigned pid, std::uint64_t result, std::uint64_t invoke,
              std::uint64_t response) {
  return {OpType::kRead, pid, 0, result, invoke, response};
}

OpRecord write(unsigned pid, std::uint64_t arg, std::uint64_t invoke,
               std::uint64_t response) {
  return {OpType::kWrite, pid, arg, 0, invoke, response};
}

// ----------------------------------------------------------------------
// Counter histories, exact (k = 1)
// ----------------------------------------------------------------------

TEST(CounterCheck, EmptyHistoryOk) {
  EXPECT_TRUE(check_counter_history({}, 1).ok);
}

TEST(CounterCheck, SequentialExactOk) {
  const std::vector<OpRecord> h = {
      inc(0, 1, 2),
      read(1, 1, 3, 4),
      inc(0, 5, 6),
      read(1, 2, 7, 8),
  };
  EXPECT_TRUE(check_counter_history(h, 1).ok);
}

TEST(CounterCheck, MissedCompletedIncrementRejected) {
  // Read starts after the increment completed but returns 0.
  const std::vector<OpRecord> h = {
      inc(0, 1, 2),
      read(1, 0, 3, 4),
  };
  const auto result = check_counter_history(h, 1);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.violation.empty());
}

TEST(CounterCheck, FutureIncrementRejected) {
  // Read returns 1 but the only increment starts after it responded.
  const std::vector<OpRecord> h = {
      read(1, 1, 1, 2),
      inc(0, 3, 4),
  };
  EXPECT_FALSE(check_counter_history(h, 1).ok);
}

TEST(CounterCheck, OverlappingIncrementMayOrMayNotCount) {
  // Increment overlaps the read: both 0 and 1 are valid results.
  const std::vector<OpRecord> overlap0 = {inc(0, 1, 4), read(1, 0, 2, 3)};
  const std::vector<OpRecord> overlap1 = {inc(0, 1, 4), read(1, 1, 2, 3)};
  EXPECT_TRUE(check_counter_history(overlap0, 1).ok);
  EXPECT_TRUE(check_counter_history(overlap1, 1).ok);
  // But 2 is impossible with a single increment.
  const std::vector<OpRecord> overlap2 = {inc(0, 1, 4), read(1, 2, 2, 3)};
  EXPECT_FALSE(check_counter_history(overlap2, 1).ok);
}

TEST(CounterCheck, NonMonotoneSequentialReadsRejected) {
  // Two sequential reads by different processes going backwards: the
  // second read's window alone is fine (the increment overlaps it), but
  // monotonicity with the first read forbids the regression.
  const std::vector<OpRecord> h = {
      inc(0, 1, 10),          // overlaps everything
      inc(0, 11, 12),
      read(1, 2, 2, 3),       // counts both increments... impossible?
  };
  // Simpler direct construction:
  const std::vector<OpRecord> h2 = {
      inc(0, 1, 2),           // completed before everything else
      inc(1, 3, 20),          // overlaps both reads
      read(2, 2, 4, 5),       // sees both increments (valid: 2nd overlaps)
      read(3, 1, 6, 7),       // later read sees fewer: must be rejected
  };
  (void)h;
  const auto result = check_counter_history(h2, 1);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.violation.find("preceding reads"), std::string::npos)
      << result.violation;
}

TEST(CounterCheck, ConcurrentReadsMayDisagree) {
  // Overlapping reads can order either way around an overlapping inc.
  const std::vector<OpRecord> h = {
      inc(0, 1, 2),
      inc(1, 3, 20),
      read(2, 2, 4, 10),  // overlaps read below
      read(3, 1, 5, 11),
  };
  EXPECT_TRUE(check_counter_history(h, 1).ok);
}

TEST(CounterCheck, IncompleteIncrementIsOptional) {
  const std::vector<OpRecord> counted = {
      inc(0, 1, 0),  // never responded
      read(1, 1, 2, 3),
  };
  const std::vector<OpRecord> ignored = {
      inc(0, 1, 0),
      read(1, 0, 2, 3),
  };
  EXPECT_TRUE(check_counter_history(counted, 1).ok);
  EXPECT_TRUE(check_counter_history(ignored, 1).ok);
}

TEST(CounterCheck, WrongRecordTypeRejected) {
  const std::vector<OpRecord> h = {write(0, 1, 1, 2)};
  EXPECT_FALSE(check_counter_history(h, 1).ok);
}

// ----------------------------------------------------------------------
// Counter histories, relaxed (k > 1)
// ----------------------------------------------------------------------

TEST(CounterCheck, BandAcceptsApproximateValues) {
  // 4 completed increments; x = 2 (= v/2) and x = 8 (= v·2) both valid
  // for k = 2; x = 1 and x = 9 invalid.
  std::vector<OpRecord> h;
  for (int i = 0; i < 4; ++i) {
    h.push_back(inc(0, static_cast<std::uint64_t>(2 * i + 1),
                    static_cast<std::uint64_t>(2 * i + 2)));
  }
  auto with_read = [&](std::uint64_t x) {
    auto copy = h;
    copy.push_back(read(1, x, 100, 101));
    return copy;
  };
  EXPECT_TRUE(check_counter_history(with_read(2), 2).ok);
  EXPECT_TRUE(check_counter_history(with_read(4), 2).ok);
  EXPECT_TRUE(check_counter_history(with_read(8), 2).ok);
  EXPECT_FALSE(check_counter_history(with_read(1), 2).ok);
  EXPECT_FALSE(check_counter_history(with_read(9), 2).ok);
  // The same history is exact-invalid unless x = 4.
  EXPECT_FALSE(check_counter_history(with_read(2), 1).ok);
  EXPECT_TRUE(check_counter_history(with_read(4), 1).ok);
}

TEST(CounterCheck, BandZeroRequiresZero) {
  const std::vector<OpRecord> h = {
      inc(0, 1, 2),
      read(1, 0, 3, 4),  // v ≥ 1 ⇒ 0 < v/k for any finite k
  };
  EXPECT_FALSE(check_counter_history(h, 1000).ok);
}

TEST(CounterCheck, RelaxedMonotoneAssignmentAccepted) {
  // Reads 6 then 2 sequentially with 4 completed increments, k = 2:
  // both need v = 4 except 6 → v ∈ [3,8]∩[4,4] = {4}; 2 → v ∈ [1,4]∩{4}.
  // Assignments v=4, v=4 are monotone: accepted.
  std::vector<OpRecord> h;
  for (int i = 0; i < 4; ++i) {
    h.push_back(inc(0, static_cast<std::uint64_t>(2 * i + 1),
                    static_cast<std::uint64_t>(2 * i + 2)));
  }
  h.push_back(read(1, 6, 100, 101));
  h.push_back(read(1, 2, 102, 103));
  EXPECT_TRUE(check_counter_history(h, 2).ok);
}

// ----------------------------------------------------------------------
// Max-register histories
// ----------------------------------------------------------------------

TEST(MaxRegCheck, EmptyHistoryOk) {
  EXPECT_TRUE(check_max_register_history({}, 1).ok);
}

TEST(MaxRegCheck, SequentialExactOk) {
  const std::vector<OpRecord> h = {
      write(0, 5, 1, 2),
      read(1, 5, 3, 4),
      write(0, 3, 5, 6),   // smaller write
      read(1, 5, 7, 8),    // max unchanged
      write(0, 9, 9, 10),
      read(1, 9, 11, 12),
  };
  EXPECT_TRUE(check_max_register_history(h, 1).ok);
}

TEST(MaxRegCheck, StaleReadRejected) {
  const std::vector<OpRecord> h = {
      write(0, 5, 1, 2),
      read(1, 0, 3, 4),  // must have seen the completed write
  };
  EXPECT_FALSE(check_max_register_history(h, 1).ok);
}

TEST(MaxRegCheck, InventedValueRejected) {
  const std::vector<OpRecord> h = {
      write(0, 5, 1, 2),
      read(1, 7, 3, 4),  // 7 was never written
  };
  EXPECT_FALSE(check_max_register_history(h, 1).ok);
}

TEST(MaxRegCheck, OverlappingWriteMayCount) {
  const std::vector<OpRecord> early = {write(0, 5, 1, 10), read(1, 5, 2, 3)};
  const std::vector<OpRecord> late = {write(0, 5, 1, 10), read(1, 0, 2, 3)};
  EXPECT_TRUE(check_max_register_history(early, 1).ok);
  EXPECT_TRUE(check_max_register_history(late, 1).ok);
}

TEST(MaxRegCheck, FutureWriteRejected) {
  const std::vector<OpRecord> h = {
      read(1, 5, 1, 2),
      write(0, 5, 3, 4),  // invoked after the read responded
  };
  EXPECT_FALSE(check_max_register_history(h, 1).ok);
}

TEST(MaxRegCheck, MonotonicityViolationRejected) {
  // w(9) overlaps both reads; first read returns 9, second (later) 5:
  // once a read returned 9 the maximum can never regress.
  const std::vector<OpRecord> h = {
      write(0, 5, 1, 2),
      write(0, 9, 3, 100),
      read(1, 9, 4, 5),
      read(1, 5, 6, 7),
  };
  const auto result = check_max_register_history(h, 1);
  EXPECT_FALSE(result.ok);
}

TEST(MaxRegCheck, IncompleteWriteIsOptional) {
  const std::vector<OpRecord> seen = {
      write(0, 8, 1, 0),  // never responded
      read(1, 8, 2, 3),
  };
  const std::vector<OpRecord> unseen = {
      write(0, 8, 1, 0),
      read(1, 0, 2, 3),
  };
  EXPECT_TRUE(check_max_register_history(seen, 1).ok);
  EXPECT_TRUE(check_max_register_history(unseen, 1).ok);
}

TEST(MaxRegCheck, RelaxedBand) {
  const std::vector<OpRecord> h_base = {write(0, 10, 1, 2)};
  auto with_read = [&](std::uint64_t x) {
    auto copy = h_base;
    copy.push_back(read(1, x, 3, 4));
    return copy;
  };
  // k = 2: valid results are [5, 20].
  EXPECT_TRUE(check_max_register_history(with_read(5), 2).ok);
  EXPECT_TRUE(check_max_register_history(with_read(10), 2).ok);
  EXPECT_TRUE(check_max_register_history(with_read(20), 2).ok);
  EXPECT_FALSE(check_max_register_history(with_read(4), 2).ok);
  EXPECT_FALSE(check_max_register_history(with_read(21), 2).ok);
}

TEST(MaxRegCheck, WrongRecordTypeRejected) {
  const std::vector<OpRecord> h = {inc(0, 1, 2)};
  EXPECT_FALSE(check_max_register_history(h, 1).ok);
}

}  // namespace
}  // namespace approx::sim
