// Tests for base/epoch.hpp: the per-reader epoch / RCU reclamation
// domain behind the server's published group tables and the exact
// snapshot's hard retired-record bound. Covers the guard/horizon
// handshake (a pinned reader blocks reclamation, release frees),
// nested guards on one thread, writer progress while readers
// continuously overlap (the hard-vs-soft distinction), the overflow
// fallback's soft degradation, and a concurrent RCU pointer-swap
// stress that TSan/ASan check over both memory-order backends.
#include "base/epoch.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "base/backend.hpp"

namespace approx::base {
namespace {

/// Retire-tracked payload: bumps the counter on destruction so tests
/// can observe exactly when the domain freed it.
struct Tracked {
  explicit Tracked(std::atomic<int>& counter) : freed(&counter) {}
  ~Tracked() { freed->fetch_add(1, std::memory_order_relaxed); }
  std::atomic<int>* freed;
  std::uint64_t value = 0;
};

/// Advance + reclaim until the generic list drains (bounded: each call
/// moves the epoch when no reader blocks it).
template <typename Domain>
void reclaim_until_empty(Domain& domain, int rounds = 16) {
  for (int i = 0; i < rounds && domain.retired_count() > 0; ++i) {
    domain.reclaim();
  }
}

TEST(EpochDomain, RetireFreesAfterGracePeriodsWithNoReaders) {
  EpochDomain domain(4);
  std::atomic<int> freed{0};
  domain.retire(new Tracked(freed));
  // Freshly retired: the stamp is the current epoch, so the horizon
  // has not passed it yet.
  EXPECT_EQ(domain.retired_count(), 1u);
  reclaim_until_empty(domain);
  EXPECT_EQ(freed.load(), 1);
  EXPECT_EQ(domain.retired_count(), 0u);
  EXPECT_EQ(domain.reclaimed_count(), 1u);
}

TEST(EpochDomain, PinnedReaderBlocksReclaimReleaseFrees) {
  EpochDomain domain(4);
  std::atomic<int> freed{0};
  {
    const EpochDomain::Guard guard(domain);
    domain.retire(new Tracked(freed));
    // The pinned reader holds the horizon at its epoch: no amount of
    // reclaim passes may free the object while the guard lives.
    for (int i = 0; i < 8; ++i) domain.reclaim();
    EXPECT_EQ(freed.load(), 0);
    EXPECT_EQ(domain.retired_count(), 1u);
  }
  reclaim_until_empty(domain);
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochDomain, NestedGuardsPinIndependently) {
  EpochDomain domain(4);
  std::atomic<int> freed{0};
  {
    const EpochDomain::Guard outer(domain);
    {
      const EpochDomain::Guard inner(domain);
      domain.retire(new Tracked(freed));
      for (int i = 0; i < 4; ++i) domain.reclaim();
      EXPECT_EQ(freed.load(), 0);
    }
    // Inner released; the outer guard alone still blocks: it pinned
    // the epoch the object was reachable in.
    for (int i = 0; i < 8; ++i) domain.reclaim();
    EXPECT_EQ(freed.load(), 0);
  }
  reclaim_until_empty(domain);
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochDomain, OverflowPinBlocksAllFreeingUntilReleased) {
  // One slot: the second concurrent guard must take the overflow path,
  // which degrades the bound to soft (nothing frees) but never breaks
  // safety.
  EpochDomain domain(1);
  std::atomic<int> freed{0};
  {
    const EpochDomain::Guard first(domain);
    const EpochDomain::Guard second(domain);  // overflow
    EXPECT_EQ(domain.overflow_pins(), 1u);
    domain.retire(new Tracked(freed));
    for (int i = 0; i < 8; ++i) domain.reclaim();
    EXPECT_EQ(freed.load(), 0);
  }
  reclaim_until_empty(domain);
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochDomain, WriterProgressUnderContinuouslyOverlappingReaders) {
  // The hard-bound property in miniature: readers hand critical
  // sections over so there is never a reader-free instant, yet each
  // individual section finishes — the writer's backlog must stay
  // bounded instead of growing with the retire count.
  EpochDomain domain(8);
  std::atomic<int> freed{0};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> sections{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const EpochDomain::Guard guard(domain);
        sections.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  constexpr int kRetires = 400;  // each paced wait can cost a scheduler
                                 // quantum on a loaded 1-core host
  std::size_t max_backlog = 0;
  std::uint64_t last_sections = 0;
  for (int i = 0; i < kRetires; ++i) {
    // Pace retires against reader turnover: the hard bound is stated
    // relative to per-reader progress (each section finishes), so every
    // retire waits for at least one fresh completed section — without
    // ever requiring a reader-free instant, which this workload never
    // has.
    while (sections.load(std::memory_order_acquire) == last_sections) {
      std::this_thread::yield();
    }
    last_sections = sections.load(std::memory_order_acquire);
    domain.retire(new Tracked(freed));
    domain.reclaim();
    max_backlog = std::max(max_backlog, domain.retired_count());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  // Backlog bound: each reclaim() advances the epoch at most once and
  // frees everything older than the grace margin, so the list holds a
  // few epochs' worth of retires (one per iteration) plus slack — far
  // below the total. The old quiescence-based scheme would keep the
  // whole history here, since there is never a zero-reader moment.
  EXPECT_LT(max_backlog, 64u) << "retired backlog grew unboundedly";
  EXPECT_GT(freed.load(), kRetires / 2);
  reclaim_until_empty(domain);
  EXPECT_EQ(freed.load(), kRetires);
}

TEST(EpochDomain, EpochAdvancesOnlyWhenActiveReadersCaughtUp) {
  EpochDomain domain(4);
  const std::uint64_t start = domain.current_epoch();
  EXPECT_TRUE(domain.try_advance());
  EXPECT_EQ(domain.current_epoch(), start + 1);
  const EpochDomain::Guard guard(domain);  // pins start + 1
  EXPECT_FALSE(domain.try_advance() && domain.try_advance())
      << "advanced twice past a reader pinned at the first epoch";
}

/// The RCU pattern end to end, the way the server uses it: a writer
/// republishes an immutable object by pointer swap and retires the old
/// one; readers pin, load, dereference, unpin. ASan proves no freed
/// object is ever dereferenced; TSan proves the handshake's ordering.
/// Templated over the backend so the relaxed mapping is exercised too.
template <typename Backend>
void rcu_swap_stress() {
  struct Payload {
    explicit Payload(std::uint64_t v) : a(v), b(~v) {}
    std::uint64_t a;
    std::uint64_t b;
  };
  EpochDomainT<Backend> domain(8);
  std::atomic<Payload*> published{new Payload(0)};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const typename EpochDomainT<Backend>::Guard guard(domain);
        const Payload* payload = published.load(std::memory_order_acquire);
        // The invariant a == ~b holds in every published version; a
        // dereference after free (or a torn publication) breaks it.
        ASSERT_EQ(payload->a, ~payload->b);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Wait for every reader to have dereferenced at least once — on a
  // single core the writer could otherwise burn through all its swaps
  // (and set stop) inside one quantum before a reader ever runs.
  while (reads.load(std::memory_order_acquire) < 3) {
    std::this_thread::yield();
  }
  constexpr std::uint64_t kSwaps = 3000;
  for (std::uint64_t i = 1; i <= kSwaps; ++i) {
    Payload* next = new Payload(i);
    Payload* old = published.exchange(next, std::memory_order_acq_rel);
    domain.retire(old);
    if (i % 8 == 0) domain.reclaim();
    if (i % 64 == 0) std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  EXPECT_GT(reads.load(), 0u);
  reclaim_until_empty(domain);
  EXPECT_EQ(domain.retired_count(), 0u);
  delete published.load(std::memory_order_relaxed);
}

TEST(EpochDomain, RcuPointerSwapStressSeqCst) {
  rcu_swap_stress<DirectBackend>();
}

TEST(EpochDomain, RcuPointerSwapStressRelaxedOrders) {
  rcu_swap_stress<RelaxedDirectBackend>();
}

}  // namespace
}  // namespace approx::base
