// Unit tests for the unbounded segmented array (the realization of the
// paper's infinite switch sequence).
#include "base/segmented_array.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "base/test_and_set.hpp"

namespace approx::base {
namespace {

TEST(SegmentedArray, ElementsDefaultConstructed) {
  SegmentedArray<std::uint64_t, 16, 64> arr;
  EXPECT_EQ(arr.at(0), 0u);
  EXPECT_EQ(arr.at(15), 0u);
  EXPECT_EQ(arr.at(16), 0u);   // second segment
  EXPECT_EQ(arr.at(999), 0u);  // far segment
}

TEST(SegmentedArray, ReferencesAreStable) {
  SegmentedArray<std::uint64_t, 16, 64> arr;
  std::uint64_t* first = &arr.at(3);
  arr.at(500) = 42;  // trigger more allocation
  EXPECT_EQ(first, &arr.at(3));
  arr.at(3) = 7;
  EXPECT_EQ(*first, 7u);
}

TEST(SegmentedArray, IndependentSlots) {
  SegmentedArray<std::uint64_t, 8, 64> arr;
  for (std::uint64_t i = 0; i < 100; ++i) arr.at(i) = i * i;
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(arr.at(i), i * i) << i;
  }
}

TEST(SegmentedArray, AllocatesLazily) {
  SegmentedArray<std::uint64_t, 16, 1024> arr;
  EXPECT_EQ(arr.allocated_segments(), 0u);
  arr.at(0);
  EXPECT_EQ(arr.allocated_segments(), 1u);
  arr.at(5);  // same segment
  EXPECT_EQ(arr.allocated_segments(), 1u);
  arr.at(16 * 9);  // segment 9 only; segments in between stay empty
  EXPECT_EQ(arr.allocated_segments(), 2u);
}

TEST(SegmentedArray, CrossChunkIndexingAndIsolation) {
  // 4096 segments of 8 split across directory chunks; indices landing in
  // far-apart chunks must resolve independently and keep their values.
  SegmentedArray<std::uint64_t, 8, 4096> arr;
  const std::size_t far = 8 * 4095 + 7;  // last element of last segment
  arr.at(0) = 11;
  arr.at(far) = 22;
  arr.at(8 * 2048) = 33;  // first element of a middle chunk
  EXPECT_EQ(arr.at(0), 11u);
  EXPECT_EQ(arr.at(far), 22u);
  EXPECT_EQ(arr.at(8 * 2048), 33u);
  EXPECT_EQ(arr.allocated_segments(), 3u);
  EXPECT_EQ(arr.at(8), 0u);  // untouched neighbours stay zero
}

TEST(SegmentedArray, DefaultCapacityConstructionIsLight) {
  // A counter fleet embeds thousands of these; an untouched array must
  // cost only its root allocation (kilobytes), not a flat directory of
  // 2^20 slots. 512 default-capacity arrays construct, serve one touch
  // each and destruct without breaking a sweat.
  for (int round = 0; round < 512; ++round) {
    SegmentedArray<std::uint64_t> arr;
    EXPECT_EQ(arr.allocated_segments(), 0u);
    arr.at(static_cast<std::size_t>(round)) = 1;
    EXPECT_EQ(arr.allocated_segments(), 1u);
  }
}

TEST(SegmentedArray, HoldsNonMovableBaseObjects) {
  SegmentedArray<TasBit, 32, 64> switches;
  EXPECT_FALSE(switches.at(40).read());
  EXPECT_FALSE(switches.at(40).test_and_set());
  EXPECT_TRUE(switches.at(40).read());
  EXPECT_FALSE(switches.at(41).read());  // neighbours untouched
}

// Concurrent first touch of the same segment: exactly one segment must be
// published, and every thread must end up using it.
TEST(SegmentedArray, ConcurrentFirstTouchIsSafe) {
  constexpr int kThreads = 8;
  for (int round = 0; round < 50; ++round) {
    SegmentedArray<std::atomic<std::uint64_t>, 64, 16> arr;
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        while (!go.load(std::memory_order_acquire)) {}
        // Everyone races to allocate segment 0 and bumps a distinct slot.
        arr.at(static_cast<std::size_t>(t)).fetch_add(1);
      });
    }
    go.store(true, std::memory_order_release);
    for (auto& thread : threads) thread.join();
    ASSERT_EQ(arr.allocated_segments(), 1u);
    for (int t = 0; t < kThreads; ++t) {
      ASSERT_EQ(arr.at(static_cast<std::size_t>(t)).load(), 1u);
    }
  }
}

TEST(SegmentedArray, ConcurrentDisjointSegments) {
  constexpr int kThreads = 6;
  SegmentedArray<std::uint64_t, 16, 1024> arr;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {}
      for (int i = 0; i < 200; ++i) {
        arr.at(static_cast<std::size_t>(t * 1000 + i)) =
            static_cast<std::uint64_t>(t + 1);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < 200; ++i) {
      ASSERT_EQ(arr.at(static_cast<std::size_t>(t * 1000 + i)),
                static_cast<std::uint64_t>(t + 1));
    }
  }
}

}  // namespace
}  // namespace approx::base
