// Unit tests for base/kmath.hpp: the saturating arithmetic and integer
// log/power helpers every algorithm relies on.
#include "base/kmath.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace approx::base {
namespace {

TEST(SatMul, SmallValues) {
  EXPECT_EQ(sat_mul(0, 0), 0u);
  EXPECT_EQ(sat_mul(0, 17), 0u);
  EXPECT_EQ(sat_mul(17, 0), 0u);
  EXPECT_EQ(sat_mul(3, 5), 15u);
  EXPECT_EQ(sat_mul(1, kU64Max), kU64Max);
}

TEST(SatMul, SaturatesInsteadOfWrapping) {
  EXPECT_EQ(sat_mul(kU64Max, 2), kU64Max);
  EXPECT_EQ(sat_mul(std::uint64_t{1} << 32, std::uint64_t{1} << 32), kU64Max);
  EXPECT_EQ(sat_mul(kU64Max, kU64Max), kU64Max);
}

TEST(SatMul, ExactAtBoundary) {
  // (2^32)·(2^32 − 1) < 2^64: must not saturate.
  const std::uint64_t a = std::uint64_t{1} << 32;
  const std::uint64_t b = (std::uint64_t{1} << 32) - 1;
  EXPECT_EQ(sat_mul(a, b), a * b);
}

TEST(SatAdd, Basics) {
  EXPECT_EQ(sat_add(2, 3), 5u);
  EXPECT_EQ(sat_add(kU64Max, 0), kU64Max);
  EXPECT_EQ(sat_add(kU64Max, 1), kU64Max);
  EXPECT_EQ(sat_add(kU64Max - 1, 1), kU64Max);
  EXPECT_EQ(sat_add(kU64Max, kU64Max), kU64Max);
}

TEST(PowK, SmallCases) {
  EXPECT_EQ(pow_k(2, 0), 1u);
  EXPECT_EQ(pow_k(2, 10), 1024u);
  EXPECT_EQ(pow_k(3, 4), 81u);
  EXPECT_EQ(pow_k(10, 3), 1000u);
  EXPECT_EQ(pow_k(1, 100), 1u);
}

TEST(PowK, Saturates) {
  EXPECT_EQ(pow_k(2, 64), kU64Max);
  EXPECT_EQ(pow_k(2, 63), std::uint64_t{1} << 63);
  EXPECT_EQ(pow_k(kU64Max, 2), kU64Max);
}

TEST(FloorLogK, Basics) {
  EXPECT_EQ(floor_log_k(2, 1), 0u);
  EXPECT_EQ(floor_log_k(2, 2), 1u);
  EXPECT_EQ(floor_log_k(2, 3), 1u);
  EXPECT_EQ(floor_log_k(2, 4), 2u);
  EXPECT_EQ(floor_log_k(10, 999), 2u);
  EXPECT_EQ(floor_log_k(10, 1000), 3u);
}

TEST(FloorLogK, InverseOfPow) {
  for (std::uint64_t k : {2u, 3u, 5u, 7u, 16u}) {
    for (std::uint64_t e = 0; e < 12; ++e) {
      const std::uint64_t v = pow_k(k, e);
      EXPECT_EQ(floor_log_k(k, v), e) << "k=" << k << " e=" << e;
      EXPECT_EQ(floor_log_k(k, v + 1), (v + 1 >= pow_k(k, e + 1)) ? e + 1 : e);
    }
  }
}

TEST(ExactLogK, PowersOnly) {
  EXPECT_EQ(exact_log_k(4, 1), 0u);
  EXPECT_EQ(exact_log_k(4, 4), 1u);
  EXPECT_EQ(exact_log_k(4, 64), 3u);
}

TEST(FloorLog2, Basics) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(kU64Max), 63u);
}

TEST(CeilLog2, Basics) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2((std::uint64_t{1} << 40) + 1), 41u);
}

TEST(CeilPow2, Basics) {
  EXPECT_EQ(ceil_pow2(1), 1u);
  EXPECT_EQ(ceil_pow2(2), 2u);
  EXPECT_EQ(ceil_pow2(3), 4u);
  EXPECT_EQ(ceil_pow2(1000), 1024u);
  EXPECT_EQ(ceil_pow2(std::uint64_t{1} << 62), std::uint64_t{1} << 62);
}

TEST(CeilSqrt, Basics) {
  EXPECT_EQ(ceil_sqrt(0), 0u);
  EXPECT_EQ(ceil_sqrt(1), 1u);
  EXPECT_EQ(ceil_sqrt(2), 2u);
  EXPECT_EQ(ceil_sqrt(4), 2u);
  EXPECT_EQ(ceil_sqrt(5), 3u);
  EXPECT_EQ(ceil_sqrt(9), 3u);
  EXPECT_EQ(ceil_sqrt(10), 4u);
  EXPECT_EQ(ceil_sqrt(64), 8u);
  EXPECT_EQ(ceil_sqrt(1024), 32u);
}

// Property sweep: for every n in a grid, k = ceil_sqrt(n) satisfies the
// paper's accuracy precondition k² ≥ n.
TEST(CeilSqrt, SquareDominatesArgument) {
  for (std::uint64_t n = 1; n <= 4096; ++n) {
    const std::uint64_t k = ceil_sqrt(n);
    EXPECT_GE(k * k, n) << n;
    if (k > 1) {
      EXPECT_LT((k - 1) * (k - 1), n) << n;  // minimality
    }
  }
}

}  // namespace
}  // namespace approx::base
