// Unit tests for the base objects: atomic register and test&set bit.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "base/register.hpp"
#include "base/test_and_set.hpp"

namespace approx::base {
namespace {

TEST(RegisterTest, InitialValue) {
  Register<std::uint64_t> reg;
  EXPECT_EQ(reg.read(), 0u);
  Register<std::uint64_t> reg2(17);
  EXPECT_EQ(reg2.read(), 17u);
}

TEST(RegisterTest, WriteThenRead) {
  Register<std::uint64_t> reg;
  reg.write(5);
  EXPECT_EQ(reg.read(), 5u);
  reg.write(3);  // historyless: overwrites unconditionally
  EXPECT_EQ(reg.read(), 3u);
}

TEST(RegisterTest, DistinctIds) {
  Register<std::uint64_t> a;
  Register<std::uint64_t> b;
  EXPECT_NE(a.id(), b.id());
  EXPECT_NE(a.id(), kInvalidObjectId);
}

TEST(RegisterTest, WorksWithSmallTypes) {
  Register<std::uint8_t> bit(0);
  bit.write(1);
  EXPECT_EQ(bit.read(), 1u);
}

TEST(TasBitTest, InitiallyUnset) {
  TasBit bit;
  EXPECT_FALSE(bit.read());
}

TEST(TasBitTest, FirstTasWinsSubsequentLose) {
  TasBit bit;
  EXPECT_FALSE(bit.test_and_set());  // previous value 0: winner
  EXPECT_TRUE(bit.read());
  EXPECT_TRUE(bit.test_and_set());   // already set
  EXPECT_TRUE(bit.test_and_set());   // overwrites itself (historyless)
  EXPECT_TRUE(bit.read());
}

// The paper relies on test&set having a *unique* winner per bit (each
// switch accounts for a disjoint batch of increments). Verify under real
// contention.
TEST(TasBitTest, ExactlyOneConcurrentWinner) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  for (int round = 0; round < kRounds; ++round) {
    TasBit bit;
    std::atomic<int> winners{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        while (!go.load(std::memory_order_acquire)) {}
        if (!bit.test_and_set()) winners.fetch_add(1);
      });
    }
    go.store(true, std::memory_order_release);
    for (auto& thread : threads) thread.join();
    ASSERT_EQ(winners.load(), 1) << "round " << round;
  }
}

TEST(TasBitTest, StepAccounting) {
  TasBit bit;
  StepRecorder rec;
  {
    ScopedRecording on(rec);
    (void)bit.test_and_set();
    (void)bit.read();
  }
  EXPECT_EQ(rec.test_and_sets(), 1u);
  EXPECT_EQ(rec.reads(), 1u);
}

}  // namespace
}  // namespace approx::base
