// Tests for base/seqlock_ring.hpp: the single-writer/many-reader
// seqlock frame ring the shm transport is built on. Covers the happy
// roundtrip (including wraparound), the overrun protocol (a parked
// reader detects the lap instead of decoding torn bytes), writer
// restart (kDead via the generation word), header/slot byte-flip
// robustness, and a concurrent writer/reader stress that TSan checks
// over BOTH memory-order backends (the relaxed mapping the transport
// ships and the seq_cst formal model).
#include "base/seqlock_ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "base/backend.hpp"

namespace approx::base {
namespace {

/// A frame whose bytes are self-describing: first 8 bytes carry the
/// frame index, the rest a byte derived from it. Lengths vary so wraps
/// exercise the padded tail word.
std::string make_frame(std::uint64_t index, std::size_t max_len) {
  const std::size_t len =
      8 + static_cast<std::size_t>(index * 7 % (max_len - 8));
  std::string out(len, static_cast<char>('a' + index % 23));
  std::memcpy(out.data(), &index, 8);
  return out;
}

bool frame_consistent(const std::string& bytes) {
  if (bytes.size() < 8) return false;
  std::uint64_t index = 0;
  std::memcpy(&index, bytes.data(), 8);
  const char fill = static_cast<char>('a' + index % 23);
  for (std::size_t i = 8; i < bytes.size(); ++i) {
    if (bytes[i] != fill) return false;
  }
  return true;
}

TEST(SeqlockRingGeometry, RegionBytes) {
  // Header + one 64-aligned slot (24B slot header + 8B payload → 64).
  EXPECT_EQ(seqlock_ring_region_bytes(1, 8), 128u + 64u);
  EXPECT_EQ(seqlock_ring_region_bytes(1, 41), 128u + 128u);  // 24+48 → 128
  EXPECT_EQ(seqlock_ring_region_bytes(4, 8), 128u + 4 * 64u);
}

TEST(SeqlockRingWriter, FormatRejectsBadGeometry) {
  std::vector<std::uint64_t> region(seqlock_ring_region_bytes(4, 64) / 8);
  SeqlockRingWriter writer;
  EXPECT_FALSE(writer.format(nullptr, region.size() * 8, 4, 64, 1));
  EXPECT_FALSE(writer.format(region.data(), region.size() * 8, 0, 64, 1));
  EXPECT_FALSE(writer.format(region.data(), region.size() * 8, 4, 0, 1));
  EXPECT_FALSE(writer.format(region.data(), region.size() * 8, 4, 64, 0));
  EXPECT_FALSE(writer.format(region.data(), 64, 4, 64, 1));  // too small
  EXPECT_TRUE(writer.format(region.data(), region.size() * 8, 4, 64, 1));
}

TEST(SeqlockRing, RoundtripThroughWraparound) {
  constexpr std::uint32_t kSlots = 4;
  constexpr std::uint64_t kCap = 128;
  std::vector<std::uint64_t> region(seqlock_ring_region_bytes(kSlots, kCap) /
                                    8);
  SeqlockRingWriter writer;
  ASSERT_TRUE(writer.format(region.data(), region.size() * 8, kSlots, kCap,
                            /*generation=*/7));
  SeqlockRingReader reader;
  ASSERT_TRUE(reader.attach(region.data(), region.size() * 8));
  EXPECT_EQ(reader.generation(), 7u);

  std::string out;
  EXPECT_EQ(reader.poll(out), RingPoll::kEmpty);
  // 25 frames through a 4-slot ring: 6 full wraps. The reader keeps up,
  // so it sees EVERY frame, in order, byte-exact.
  for (std::uint64_t i = 0; i < 25; ++i) {
    const std::string frame = make_frame(i, kCap);
    ASSERT_TRUE(writer.publish(frame.data(), frame.size()));
    ASSERT_EQ(reader.poll(out), RingPoll::kFrame) << "frame " << i;
    EXPECT_EQ(out, frame);
    EXPECT_EQ(reader.poll(out), RingPoll::kEmpty);
  }
  EXPECT_EQ(writer.frames_published(), 25u);
}

TEST(SeqlockRing, ParkedReaderOverrunsThenResumesAtHead) {
  constexpr std::uint32_t kSlots = 4;
  constexpr std::uint64_t kCap = 64;
  std::vector<std::uint64_t> region(seqlock_ring_region_bytes(kSlots, kCap) /
                                    8);
  SeqlockRingWriter writer;
  ASSERT_TRUE(writer.format(region.data(), region.size() * 8, kSlots, kCap, 1));
  SeqlockRingReader reader;
  ASSERT_TRUE(reader.attach(region.data(), region.size() * 8));

  // Park the reader while the writer laps the whole ring: its slot-0
  // frame is gone, and the seq discipline says so.
  for (std::uint64_t i = 0; i < kSlots + 1; ++i) {
    const std::string frame = make_frame(i, kCap);
    ASSERT_TRUE(writer.publish(frame.data(), frame.size()));
  }
  std::string out;
  EXPECT_EQ(reader.poll(out), RingPoll::kOverrun);
  // Recovery: re-anchor at the head; the ring then flows again.
  reader.skip_to_head();
  EXPECT_EQ(reader.cursor(), kSlots + 1);
  EXPECT_EQ(reader.poll(out), RingPoll::kEmpty);
  const std::string next = make_frame(99, kCap);
  ASSERT_TRUE(writer.publish(next.data(), next.size()));
  ASSERT_EQ(reader.poll(out), RingPoll::kFrame);
  EXPECT_EQ(out, next);
}

TEST(SeqlockRing, OversizedPublishRejectedRingUntouched) {
  constexpr std::uint64_t kCap = 64;
  std::vector<std::uint64_t> region(seqlock_ring_region_bytes(1, kCap) / 8);
  SeqlockRingWriter writer;
  ASSERT_TRUE(writer.format(region.data(), region.size() * 8, 1, kCap, 1));
  SeqlockRingReader reader;
  ASSERT_TRUE(reader.attach(region.data(), region.size() * 8));
  std::string big(kCap + 1, 'x');
  EXPECT_FALSE(writer.publish(big.data(), big.size()));
  EXPECT_EQ(writer.frames_published(), 0u);
  std::string out;
  EXPECT_EQ(reader.poll(out), RingPoll::kEmpty);
  // Exactly capacity still fits.
  std::string fits(kCap, 'y');
  EXPECT_TRUE(writer.publish(fits.data(), fits.size()));
  ASSERT_EQ(reader.poll(out), RingPoll::kFrame);
  EXPECT_EQ(out, fits);
}

TEST(SeqlockRing, WriterRestartFlipsReadersToDead) {
  constexpr std::uint32_t kSlots = 2;
  constexpr std::uint64_t kCap = 64;
  std::vector<std::uint64_t> region(seqlock_ring_region_bytes(kSlots, kCap) /
                                    8);
  SeqlockRingWriter writer;
  ASSERT_TRUE(writer.format(region.data(), region.size() * 8, kSlots, kCap,
                            /*generation=*/0xAAAA));
  SeqlockRingReader reader;
  ASSERT_TRUE(reader.attach(region.data(), region.size() * 8));
  const std::string frame = make_frame(0, kCap);
  ASSERT_TRUE(writer.publish(frame.data(), frame.size()));
  std::string out;
  ASSERT_EQ(reader.poll(out), RingPoll::kFrame);

  // In-place re-format under a fresh generation: the old reader must
  // see kDead (never old-generation slots decoded as live frames), and
  // a fresh attach adopts the new generation.
  ASSERT_TRUE(writer.format(region.data(), region.size() * 8, kSlots, kCap,
                            /*generation=*/0xBBBB));
  EXPECT_EQ(reader.poll(out), RingPoll::kDead);
  ASSERT_TRUE(reader.attach(region.data(), region.size() * 8));
  EXPECT_EQ(reader.generation(), 0xBBBBu);
  EXPECT_EQ(reader.poll(out), RingPoll::kEmpty);  // new ring starts empty
  ASSERT_TRUE(writer.publish(frame.data(), frame.size()));
  ASSERT_EQ(reader.poll(out), RingPoll::kFrame);
  EXPECT_EQ(out, frame);
}

TEST(SeqlockRing, HeaderByteFlipsNeverValidate) {
  constexpr std::uint32_t kSlots = 2;
  constexpr std::uint64_t kCap = 64;
  std::vector<std::uint64_t> region(seqlock_ring_region_bytes(kSlots, kCap) /
                                    8);
  SeqlockRingWriter writer;
  // Many-bit generation: no single byte flip can zero it.
  ASSERT_TRUE(writer.format(region.data(), region.size() * 8, kSlots, kCap,
                            0xDEADBEEF12345678ull));
  auto* bytes = reinterpret_cast<unsigned char*>(region.data());
  SeqlockRingReader reader;
  // Identity words (magic, layout|count, payload_bytes): any single
  // byte flip must fail attach — geometry lies are caught before any
  // slot arithmetic can run off the mapping.
  for (std::size_t off = 0; off < 24; ++off) {
    bytes[off] ^= 0x40;
    EXPECT_FALSE(reader.attach(region.data(), region.size() * 8))
        << "flip at header offset " << off;
    bytes[off] ^= 0x40;
  }
  // Generation byte flips still attach (any nonzero nonce is a valid
  // identity — the transport layer checks it against the OFFER).
  for (std::size_t off = 24; off < 32; ++off) {
    bytes[off] ^= 0x40;
    EXPECT_TRUE(reader.attach(region.data(), region.size() * 8));
    EXPECT_NE(reader.generation(), 0xDEADBEEF12345678ull);
    bytes[off] ^= 0x40;
  }
  ASSERT_TRUE(reader.attach(region.data(), region.size() * 8));
  EXPECT_EQ(reader.generation(), 0xDEADBEEF12345678ull);
}

TEST(SeqlockRing, SlotHeaderByteFlipsReadAsOverrunNeverGarbage) {
  constexpr std::uint64_t kCap = 64;
  std::vector<std::uint64_t> region(seqlock_ring_region_bytes(1, kCap) / 8);
  SeqlockRingWriter writer;
  ASSERT_TRUE(writer.format(region.data(), region.size() * 8, 1, kCap, 1));
  const std::string frame = make_frame(3, kCap);
  ASSERT_TRUE(writer.publish(frame.data(), frame.size()));
  SeqlockRingReader reader;
  ASSERT_TRUE(reader.attach(region.data(), region.size() * 8));
  auto* bytes = reinterpret_cast<unsigned char*>(region.data());
  constexpr std::size_t kSlotBase = 128;  // kRingHeaderBytes
  std::string out;
  // seq (0..7) and frame_index (8..15): any flip breaks the exact
  // stable-value / index match → kOverrun. len (16..23): flips in the
  // upper bytes push it past capacity → kOverrun (a low-byte flip
  // yields a still-in-range length the discipline cannot distinguish
  // from a real frame — no checksum — so byte 16 is exempt).
  for (std::size_t off = 0; off < 24; ++off) {
    if (off == 16) continue;
    bytes[kSlotBase + off] ^= 0x40;
    EXPECT_EQ(reader.poll(out), RingPoll::kOverrun)
        << "flip at slot offset " << off;
    bytes[kSlotBase + off] ^= 0x40;
  }
  // Restored bytes decode cleanly.
  ASSERT_EQ(reader.poll(out), RingPoll::kFrame);
  EXPECT_EQ(out, frame);
}

/// Concurrent stress, typed over both memory-order backends: one writer
/// laps a tiny ring while readers race it. Every kFrame a reader gets
/// must be internally consistent (the seqlock certification claim);
/// overruns are expected and recovered via skip_to_head. Run under TSan
/// this is the ring's race-freedom proof for BOTH order mappings.
template <typename Backend>
struct SeqlockRingStress : ::testing::Test {};

using StressBackends = ::testing::Types<DirectBackend, RelaxedDirectBackend>;
TYPED_TEST_SUITE(SeqlockRingStress, StressBackends);

TYPED_TEST(SeqlockRingStress, ConcurrentWriterAndReadersStayConsistent) {
  constexpr std::uint32_t kSlots = 4;
  constexpr std::uint64_t kCap = 256;
  constexpr std::uint64_t kFrames = 20000;
  std::vector<std::uint64_t> region(seqlock_ring_region_bytes(kSlots, kCap) /
                                    8);
  SeqlockRingWriterT<TypeParam> writer;
  ASSERT_TRUE(writer.format(region.data(), region.size() * 8, kSlots, kCap,
                            /*generation=*/42));

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> frames_read{0};
  std::atomic<int> torn_frames{0};
  auto reader_fn = [&] {
    SeqlockRingReaderT<TypeParam> reader;
    ASSERT_TRUE(reader.attach(region.data(), region.size() * 8));
    std::string out;
    while (!done.load(std::memory_order_acquire)) {
      switch (reader.poll(out)) {
        case RingPoll::kFrame:
          if (!frame_consistent(out)) torn_frames.fetch_add(1);
          frames_read.fetch_add(1, std::memory_order_relaxed);
          break;
        case RingPoll::kOverrun:
          reader.skip_to_head();
          break;
        case RingPoll::kEmpty:
          std::this_thread::yield();
          break;
        case RingPoll::kDead:
          FAIL() << "generation never changes in this test";
      }
    }
  };
  std::thread r1(reader_fn);
  std::thread r2(reader_fn);
  for (std::uint64_t i = 0; i < kFrames; ++i) {
    const std::string frame = make_frame(i, kCap);
    ASSERT_TRUE(writer.publish(frame.data(), frame.size()));
    if (i % 64 == 0) std::this_thread::yield();  // let readers catch some
  }
  done.store(true, std::memory_order_release);
  r1.join();
  r2.join();
  EXPECT_EQ(torn_frames.load(), 0);
  EXPECT_GT(frames_read.load(), 0u);
}

}  // namespace
}  // namespace approx::base
