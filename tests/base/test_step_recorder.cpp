// Unit tests for the step-accounting substrate (the paper's cost model).
#include "base/step_recorder.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "base/register.hpp"
#include "base/test_and_set.hpp"

namespace approx::base {
namespace {

TEST(StepRecorder, StartsEmpty) {
  StepRecorder rec;
  EXPECT_EQ(rec.total(), 0u);
  EXPECT_EQ(rec.reads(), 0u);
  EXPECT_EQ(rec.writes(), 0u);
  EXPECT_EQ(rec.test_and_sets(), 0u);
  EXPECT_EQ(rec.distinct_objects(), 0u);
}

TEST(StepRecorder, CountsPerKind) {
  Register<std::uint64_t> reg;
  TasBit bit;
  StepRecorder rec;
  {
    ScopedRecording on(rec);
    reg.write(1);
    reg.write(2);
    (void)reg.read();
    (void)bit.test_and_set();
  }
  EXPECT_EQ(rec.writes(), 2u);
  EXPECT_EQ(rec.reads(), 1u);
  EXPECT_EQ(rec.test_and_sets(), 1u);
  EXPECT_EQ(rec.total(), 4u);
}

TEST(StepRecorder, NothingRecordedWithoutInstallation) {
  Register<std::uint64_t> reg;
  StepRecorder rec;
  reg.write(1);  // not installed: must not be charged
  {
    ScopedRecording on(rec);
    (void)reg.read();
  }
  reg.write(2);  // uninstalled again
  EXPECT_EQ(rec.total(), 1u);
}

TEST(StepRecorder, NestedRecordersDoNotDoubleCharge) {
  Register<std::uint64_t> reg;
  StepRecorder outer;
  StepRecorder inner;
  {
    ScopedRecording on_outer(outer);
    reg.write(1);
    {
      ScopedRecording on_inner(inner);
      reg.write(2);
      reg.write(3);
    }
    reg.write(4);
  }
  EXPECT_EQ(outer.total(), 2u);  // writes 1 and 4
  EXPECT_EQ(inner.total(), 2u);  // writes 2 and 3
}

TEST(StepRecorder, DistinctObjectTracking) {
  Register<std::uint64_t> a;
  Register<std::uint64_t> b;
  TasBit c;
  StepRecorder rec(/*track_objects=*/true);
  {
    ScopedRecording on(rec);
    a.write(1);
    a.write(2);
    (void)b.read();
    (void)c.test_and_set();
    (void)c.read();
  }
  EXPECT_EQ(rec.total(), 5u);
  EXPECT_EQ(rec.distinct_objects(), 3u);
}

TEST(StepRecorder, DistinctObjectsOffByDefault) {
  Register<std::uint64_t> a;
  StepRecorder rec;
  {
    ScopedRecording on(rec);
    a.write(1);
  }
  EXPECT_FALSE(rec.tracking_objects());
  EXPECT_EQ(rec.distinct_objects(), 0u);
}

TEST(StepRecorder, ResetClearsEverything) {
  Register<std::uint64_t> a;
  StepRecorder rec(/*track_objects=*/true);
  {
    ScopedRecording on(rec);
    a.write(1);
  }
  rec.reset();
  EXPECT_EQ(rec.total(), 0u);
  EXPECT_EQ(rec.distinct_objects(), 0u);
}

TEST(StepRecorder, StepsOfHelper) {
  Register<std::uint64_t> a;
  const std::uint64_t steps = steps_of([&] {
    a.write(1);
    (void)a.read();
  });
  EXPECT_EQ(steps, 2u);
}

TEST(StepRecorder, RecordersAreThreadLocal) {
  Register<std::uint64_t> reg;
  StepRecorder main_rec;
  ScopedRecording on(main_rec);

  std::uint64_t other_total = 0;
  std::thread other([&] {
    // No recorder installed on this thread yet: not charged anywhere.
    reg.write(7);
    StepRecorder rec;
    {
      ScopedRecording inner(rec);
      (void)reg.read();
      (void)reg.read();
    }
    other_total = rec.total();
  });
  other.join();

  EXPECT_EQ(other_total, 2u);
  EXPECT_EQ(main_rec.total(), 0u);  // nothing leaked across threads
}

TEST(StepRecorder, PeeksAreNeverCharged) {
  Register<std::uint64_t> reg(42);
  TasBit bit;
  StepRecorder rec;
  {
    ScopedRecording on(rec);
    EXPECT_EQ(reg.peek_unrecorded(), 42u);
    EXPECT_FALSE(bit.peek_unrecorded());
  }
  EXPECT_EQ(rec.total(), 0u);
}

}  // namespace
}  // namespace approx::base
