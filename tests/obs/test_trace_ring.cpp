// TraceRing tests: capacity rounding, wraparound/overwrite semantics,
// snapshot ordering, uncertified-slot skipping, and the multi-writer
// record path under real concurrency (the TSan CI job runs this suite
// — the ring's seqlock discipline must hold under the race detector).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/trace_ring.hpp"

namespace approx::obs {
namespace {

TEST(TraceRing, CapacityRoundsUpToPowerOfTwoWithFloor) {
  EXPECT_EQ(TraceRing(0).capacity(), 8u);
  EXPECT_EQ(TraceRing(1).capacity(), 8u);
  EXPECT_EQ(TraceRing(8).capacity(), 8u);
  EXPECT_EQ(TraceRing(9).capacity(), 16u);
  EXPECT_EQ(TraceRing(1000).capacity(), 1024u);
  EXPECT_EQ(TraceRing(1024).capacity(), 1024u);
}

TEST(TraceRing, RecordsAndSnapshotsInOrder) {
  TraceRing ring(16);
  ring.record(TraceKind::kClientConnect, 7);
  ring.record(TraceKind::kSubscribe, 7, 2);
  ring.record(TraceKind::kClientDisconnect, 7);
  EXPECT_EQ(ring.recorded(), 3u);

  std::vector<TraceEvent> events;
  EXPECT_EQ(ring.snapshot(events), 3u);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, TraceKind::kClientConnect);
  EXPECT_EQ(events[0].a, 7u);
  EXPECT_EQ(events[1].kind, TraceKind::kSubscribe);
  EXPECT_EQ(events[1].b, 2u);
  EXPECT_EQ(events[2].kind, TraceKind::kClientDisconnect);
  // Stamps are monotone within one recording thread.
  EXPECT_LE(events[0].ns, events[1].ns);
  EXPECT_LE(events[1].ns, events[2].ns);
  // Snapshot appends (it must compose with a caller's accumulator).
  EXPECT_EQ(ring.snapshot(events), 3u);
  EXPECT_EQ(events.size(), 6u);
}

TEST(TraceRing, WraparoundKeepsExactlyTheNewestCapacityEvents) {
  TraceRing ring(8);
  ASSERT_EQ(ring.capacity(), 8u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    ring.record(TraceKind::kBackoff, i);
  }
  EXPECT_EQ(ring.recorded(), 100u);
  std::vector<TraceEvent> events;
  EXPECT_EQ(ring.snapshot(events), 8u);
  ASSERT_EQ(events.size(), 8u);
  // The newest 8, oldest first: a = 92..99.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 92 + i) << i;
    EXPECT_EQ(events[i].kind, TraceKind::kBackoff) << i;
  }
}

TEST(TraceRing, EmptyAndPartialRings) {
  TraceRing ring(8);
  std::vector<TraceEvent> events;
  EXPECT_EQ(ring.snapshot(events), 0u);
  EXPECT_TRUE(events.empty());
  ring.record(TraceKind::kResync, 3);
  EXPECT_EQ(ring.snapshot(events), 1u);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, TraceKind::kResync);
}

TEST(TraceRing, ConcurrentMultiWriterDrainLosesNothingUncertified) {
  // W writers hammer the ring while a reader drains continuously; every
  // drained event must be one some writer actually recorded (kind/a/b
  // consistent), and after the dust settles a final snapshot holds the
  // newest `capacity` tickets' worth of certified events. TSan verifies
  // the seqlock recipe; this test verifies the values.
  constexpr unsigned kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20'000;
  TraceRing ring(64);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad{0};

  std::thread reader([&] {
    std::vector<TraceEvent> events;
    while (!stop.load(std::memory_order_acquire)) {
      events.clear();
      ring.snapshot(events);
      for (const TraceEvent& event : events) {
        // Writers encode (writer, i) as a = writer * 2^32 + i, b = i —
        // but a lap-collision slot may interleave two real events'
        // atomic fields (documented best-effort contract), so only the
        // per-field domains are checkable: kind is always kBackoff and
        // each field matches SOME recorded event.
        if (event.kind != TraceKind::kBackoff ||
            (event.a >> 32) >= kWriters || (event.a & 0xFFFFFFFFu) >= kPerWriter ||
            event.b >= kPerWriter) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  std::vector<std::thread> writers;
  for (unsigned w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        ring.record(TraceKind::kBackoff, (std::uint64_t{w} << 32) | i, i);
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(bad.load(), 0u);
  EXPECT_EQ(ring.recorded(), kWriters * kPerWriter);
  // Quiescent: every slot is certified now, so the full capacity drains.
  std::vector<TraceEvent> events;
  EXPECT_EQ(ring.snapshot(events), ring.capacity());
}

TEST(TraceRing, PrintTraceFormatsAgesAndKinds) {
  std::vector<TraceEvent> events;
  TraceEvent lost;
  lost.ns = 1'000'000;
  lost.kind = TraceKind::kSessionLost;
  lost.a = 1;
  events.push_back(lost);
  TraceEvent established;
  established.ns = 4'000'000;
  established.kind = TraceKind::kSessionEstablished;
  established.a = 2;
  events.push_back(established);

  std::ostringstream os;
  print_trace(events, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("[-3000us] session_lost a=1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("[-0us] session_established a=2"), std::string::npos)
      << text;
}

}  // namespace
}  // namespace approx::obs
