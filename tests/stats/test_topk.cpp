// Tests for the wait-free top-k leaderboard (src/stats/topk.hpp):
// max-fold semantics, capacity overflow accounting, deterministic
// ranking, and the announce-then-help insert path under adversarial
// schedules (the two-cell insert must never produce duplicate labels
// or lose an announced update).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "base/backend.hpp"
#include "sim/stepper.hpp"
#include "sim/workload.hpp"
#include "stats/topk.hpp"

namespace approx::stats {
namespace {

constexpr unsigned kN = 4;

TEST(TopK, UpdateCollectRanksDeterministically) {
  TopKT<base::DirectBackend> top(kN, 8);
  EXPECT_TRUE(top.update(0, "get", 120));
  EXPECT_TRUE(top.update(0, "put", 300));
  EXPECT_TRUE(top.update(0, "del", 300));
  EXPECT_TRUE(top.update(0, "list", 50));
  EXPECT_EQ(top.size(), 4u);

  std::vector<TopEntry> out;
  top.collect(3, out);
  ASSERT_EQ(out.size(), 3u);
  // Descending by value, label-ascending tiebreak: deterministic.
  EXPECT_EQ(out[0].label, "del");
  EXPECT_EQ(out[0].value, 300u);
  EXPECT_EQ(out[1].label, "put");
  EXPECT_EQ(out[2].label, "get");

  top.collect(16, out);  // k beyond the directory: everything, once
  EXPECT_EQ(out.size(), 4u);
}

TEST(TopK, UpdateIsAMaxFold) {
  TopKT<base::DirectBackend> top(kN, 4);
  EXPECT_TRUE(top.update(0, "ep", 100));
  EXPECT_TRUE(top.update(1, "ep", 40));  // smaller: no effect
  EXPECT_EQ(top.read("ep"), 100u);
  EXPECT_TRUE(top.update(2, "ep", 250));
  EXPECT_EQ(top.read("ep"), 250u);
  EXPECT_EQ(top.size(), 1u);
  EXPECT_EQ(top.read("absent"), 0u);
}

TEST(TopK, FullDirectoryDropsNewLabelsAndCounts) {
  TopKT<base::DirectBackend> top(kN, 2);
  EXPECT_TRUE(top.update(0, "a", 1));
  EXPECT_TRUE(top.update(0, "b", 2));
  EXPECT_FALSE(top.update(0, "c", 3));  // full, label absent: dropped
  EXPECT_EQ(top.dropped_updates(), 1u);
  // Existing labels still fold fine at capacity.
  EXPECT_TRUE(top.update(0, "a", 9));
  EXPECT_EQ(top.read("a"), 9u);
  std::vector<TopEntry> out;
  top.collect(8, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].label, "a");
  EXPECT_EQ(out[1].label, "b");
}

/// The adversarial insert race: every pid tries to insert an
/// OVERLAPPING label set concurrently under the deterministic step
/// scheduler. The announce-then-help path must (a) never create two
/// cells for one label, (b) never lose an update whose call returned
/// true, and (c) keep the directory a prefix (slots fill in order).
class TopKAdversarialSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TopKAdversarialSweep, ConcurrentInsertsNoDuplicatesNoLosses) {
  const std::uint64_t seed = GetParam();
  TopKT<base::InstrumentedBackend> top(kN, 16);
  const std::string labels[] = {"alpha", "beta", "gamma", "delta", "eps"};
  // expected[label] = max value any successful update wrote.
  std::map<std::string, std::uint64_t> expected;
  std::mutex expected_mutex;
  std::vector<std::function<void()>> programs;
  for (unsigned pid = 0; pid < kN; ++pid) {
    programs.emplace_back([&, pid] {
      sim::Rng rng(seed * 977 + pid + 1);
      for (int i = 0; i < 25; ++i) {
        const std::string& label = labels[rng.below(5)];
        const std::uint64_t value = 1 + rng.below(1000);
        if (top.update(pid, label, value)) {
          std::lock_guard lock(expected_mutex);
          auto [it, fresh] = expected.emplace(label, value);
          if (!fresh && value > it->second) it->second = value;
        }
        if (i % 7 == 0) {
          std::vector<TopEntry> mid;
          top.collect(8, mid);  // read-side helping runs concurrently
          std::set<std::string> seen;
          for (const TopEntry& entry : mid) {
            EXPECT_TRUE(seen.insert(entry.label).second)
                << "duplicate label " << entry.label << " seed " << seed;
          }
        }
      }
    });
  }
  sim::StepScheduler::run(std::move(programs), seed);

  std::vector<TopEntry> out;
  top.collect(16, out);
  ASSERT_EQ(out.size(), expected.size()) << "seed " << seed;
  std::set<std::string> seen;
  for (const TopEntry& entry : out) {
    ASSERT_TRUE(seen.insert(entry.label).second)
        << "duplicate label " << entry.label << " seed " << seed;
    const auto it = expected.find(entry.label);
    ASSERT_NE(it, expected.end()) << entry.label;
    EXPECT_EQ(entry.value, it->second)
        << "label " << entry.label << " seed " << seed;
  }
  EXPECT_EQ(top.dropped_updates(), 0u);  // 5 labels, 16 slots
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopKAdversarialSweep,
                         ::testing::Range<std::uint64_t>(0, 15));

/// Same property under real threads and the relaxed backend: genuine
/// hardware concurrency instead of the step scheduler.
TEST(TopK, RelaxedThreadsConcurrentInsertsConverge) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    TopKT<base::RelaxedDirectBackend> top(kN, 32);
    const std::string labels[] = {"a", "b", "c", "d", "e", "f", "g"};
    std::atomic<bool> go{false};
    std::array<std::map<std::string, std::uint64_t>, kN> per_pid_max;
    std::vector<std::thread> threads;
    for (unsigned pid = 0; pid < kN; ++pid) {
      threads.emplace_back([&, pid] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        sim::Rng rng(seed * 131 + pid + 1);
        for (int i = 0; i < 500; ++i) {
          const std::string& label = labels[rng.below(7)];
          const std::uint64_t value = 1 + rng.below(100000);
          if (top.update(pid, label, value)) {
            auto [it, fresh] = per_pid_max[pid].emplace(label, value);
            if (!fresh && value > it->second) it->second = value;
          }
        }
      });
    }
    go.store(true, std::memory_order_release);
    for (std::thread& thread : threads) thread.join();

    std::map<std::string, std::uint64_t> expected;
    for (const auto& local : per_pid_max) {
      for (const auto& [label, value] : local) {
        auto [it, fresh] = expected.emplace(label, value);
        if (!fresh && value > it->second) it->second = value;
      }
    }
    std::vector<TopEntry> out;
    top.collect(32, out);
    ASSERT_EQ(out.size(), expected.size()) << "seed " << seed;
    for (const TopEntry& entry : out) {
      EXPECT_EQ(entry.value, expected.at(entry.label))
          << "label " << entry.label << " seed " << seed;
    }
    EXPECT_EQ(top.dropped_updates(), 0u);
  }
}

}  // namespace
}  // namespace approx::stats
