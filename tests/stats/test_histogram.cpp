// Tests for the wait-free fixed-bucket histogram
// (src/stats/histogram.hpp): bucket-edge semantics, spec sanitizing,
// the composed per-bucket bound, flush-then-exact, the edge generator,
// and the registry's vector-entry glue (create_histogram / collect).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "base/backend.hpp"
#include "shard/registry.hpp"
#include "stats/histogram.hpp"

namespace approx::stats {
namespace {

using shard::ErrorModel;

constexpr unsigned kN = 4;

HistogramSpec latency_spec() {
  HistogramSpec spec;
  spec.bounds = {10, 100, 500, 1000};
  spec.k = 16;
  spec.shards = 1;
  return spec;
}

TEST(Histogram, BucketIndexEdgeSemantics) {
  HistogramT<base::DirectBackend> hist(kN, latency_spec());
  ASSERT_EQ(hist.num_buckets(), 5u);  // 4 finite edges + overflow
  // A value equal to an edge belongs to that edge's bucket; values
  // above the last edge land in the overflow bucket.
  EXPECT_EQ(hist.bucket_index(0), 0u);
  EXPECT_EQ(hist.bucket_index(10), 0u);
  EXPECT_EQ(hist.bucket_index(11), 1u);
  EXPECT_EQ(hist.bucket_index(100), 1u);
  EXPECT_EQ(hist.bucket_index(101), 2u);
  EXPECT_EQ(hist.bucket_index(1000), 3u);
  EXPECT_EQ(hist.bucket_index(1001), 4u);
  EXPECT_EQ(hist.bucket_index(std::numeric_limits<std::uint64_t>::max()), 4u);
}

TEST(Histogram, SpecSanitizedSortedDedupedClamped) {
  HistogramSpec spec;
  spec.bounds = {500, 10, 10, 1000, 100, 500};
  HistogramT<base::DirectBackend> hist(kN, spec);
  EXPECT_EQ(hist.bounds(), (std::vector<std::uint64_t>{10, 100, 500, 1000}));

  // An absurd edge count is clamped to the shared wire ceiling; the
  // overflow bucket absorbs whatever the clamp cut off.
  HistogramSpec huge;
  for (std::uint64_t e = 1; e <= kMaxHistogramBuckets + 64; ++e) {
    huge.bounds.push_back(e);
  }
  HistogramT<base::DirectBackend> clamped(kN, huge);
  EXPECT_EQ(clamped.bounds().size(), kMaxHistogramBuckets - 1);
  EXPECT_EQ(clamped.num_buckets(), kMaxHistogramBuckets);
}

TEST(Histogram, PerBucketBoundIsComposedShardsTimesK) {
  HistogramSpec spec = latency_spec();
  spec.k = 8;
  spec.shards = 4;
  HistogramT<base::DirectBackend> hist(kN, spec);
  EXPECT_EQ(hist.per_bucket_bound(), 32u);  // S·k
  EXPECT_EQ(hist.num_shards(), 4u);
  EXPECT_EQ(hist.k(), 8u);
}

TEST(Histogram, FlushedQuiescentSnapshotIsExact) {
  HistogramT<base::DirectBackend> hist(kN, latency_spec());
  for (std::uint64_t v = 1; v <= 1000; ++v) hist.record(0, v);
  hist.flush(0);
  std::vector<std::uint64_t> counts;
  hist.snapshot_into(0, counts);
  EXPECT_EQ(counts, (std::vector<std::uint64_t>{10, 90, 400, 500, 0}));
  EXPECT_EQ(hist.total(0), 1000u);
}

TEST(Histogram, UnflushedCountsOnlyUndercountWithinBound) {
  HistogramSpec spec = latency_spec();
  spec.k = 16;
  spec.shards = 2;
  HistogramT<base::DirectBackend> hist(kN, spec);
  const std::uint64_t bound = hist.per_bucket_bound();
  ASSERT_EQ(bound, 32u);
  std::vector<std::uint64_t> truth(hist.num_buckets(), 0);
  for (std::uint64_t v = 1; v <= 2000; ++v) {
    const std::uint64_t value = (v * 37) % 1500;
    ++truth[hist.bucket_index(value)];
    hist.record(0, value);
  }
  std::vector<std::uint64_t> counts;
  hist.snapshot_into(0, counts);
  ASSERT_EQ(counts.size(), truth.size());
  for (std::size_t b = 0; b < counts.size(); ++b) {
    // One-sided: never overcounts, trails by at most S·k.
    EXPECT_LE(counts[b], truth[b]) << "bucket " << b;
    EXPECT_GE(counts[b] + bound, truth[b]) << "bucket " << b;
  }
}

TEST(Histogram, ExponentialBoundsGeneratorShapes) {
  EXPECT_EQ(exponential_bounds(10, 2.0, 5),
            (std::vector<std::uint64_t>{10, 20, 40, 80, 160}));
  // first = 0 is promoted to 1; factor < 1 is promoted to 1.0, which
  // keeps ascending by +1 steps instead of stalling.
  EXPECT_EQ(exponential_bounds(0, 0.5, 4),
            (std::vector<std::uint64_t>{1, 2, 3, 4}));
  // Saturation: the tail collapses to one max edge (deduped).
  const auto sat = exponential_bounds(1ull << 60, 16.0, 6);
  ASSERT_GE(sat.size(), 2u);
  EXPECT_EQ(sat.back(), std::numeric_limits<std::uint64_t>::max());
  for (std::size_t i = 1; i < sat.size(); ++i) {
    EXPECT_LT(sat[i - 1], sat[i]);  // strictly ascending
  }
}

TEST(HistogramRegistry, CreateCollectAndChangeTracking) {
  shard::RegistryT<base::DirectBackend> registry(kN);
  registry.create("scalar_a", {ErrorModel::kExact, 0, 1});
  shard::AnyHistogram* hist = create_histogram<base::DirectBackend>(
      registry, "latency", latency_spec());
  ASSERT_NE(hist, nullptr);
  // Idempotent on the name (first spec wins), like RegistryT::create.
  EXPECT_EQ(create_histogram<base::DirectBackend>(registry, "latency",
                                                  latency_spec()),
            hist);
  EXPECT_EQ(registry.lookup_histogram("latency"), hist);
  // A scalar name cannot be shadowed by a histogram, or vice versa.
  EXPECT_EQ(create_histogram<base::DirectBackend>(registry, "scalar_a",
                                                  latency_spec()),
            nullptr);

  for (std::uint64_t v = 1; v <= 1000; ++v) hist->record(0, v);
  hist->flush(0);
  const auto samples = registry.snapshot_all(1);
  ASSERT_EQ(samples.size(), 2u);
  // Name-sorted flat table: "latency" < "scalar_a".
  EXPECT_EQ(samples[0].name, "latency");
  EXPECT_EQ(samples[0].model, ErrorModel::kHistogram);
  EXPECT_EQ(samples[0].error_bound, 16u);  // per-BUCKET slack S·k
  EXPECT_EQ(samples[0].bucket_bounds,
            (std::vector<std::uint64_t>{10, 100, 500, 1000}));
  EXPECT_EQ(samples[0].bucket_counts,
            (std::vector<std::uint64_t>{10, 90, 400, 500, 0}));
  EXPECT_EQ(samples[0].value, 1000u);  // derived saturated count sum
  EXPECT_EQ(samples[1].name, "scalar_a");
  EXPECT_TRUE(samples[1].bucket_counts.empty());
  EXPECT_EQ(std::string(shard::error_model_name(ErrorModel::kHistogram)),
            "hist");

  // Change tracking compares whole bucket vectors: a sequenced pass
  // after no recording must NOT report the histogram as changed.
  std::vector<shard::Sample> out;
  std::uint64_t cached = 0;
  cached = registry.snapshot_all_into_sequenced(1, out, cached, 1);
  int changed = 0;
  auto walk = [&](std::size_t, const std::string&, std::uint64_t,
                  std::uint64_t, const std::vector<std::uint64_t>*) {
    ++changed;
  };
  ASSERT_TRUE(registry.for_each_changed_since(1, cached, walk).has_value());
  EXPECT_EQ(changed, 0) << "idle pass reported changes";

  // One recorded value: exactly the histogram row changes, and the
  // walk hands the encoder its bucket vector.
  hist->record(0, 5);
  hist->flush(0);
  registry.snapshot_all_into_sequenced(1, out, cached, 2);
  int hist_changes = 0;
  auto walk2 = [&](std::size_t index, const std::string& name, std::uint64_t,
                   std::uint64_t changed_seq,
                   const std::vector<std::uint64_t>* counts) {
    ++hist_changes;
    EXPECT_EQ(index, 0u);
    EXPECT_EQ(name, "latency");
    EXPECT_EQ(changed_seq, 2u);
    ASSERT_NE(counts, nullptr);
    EXPECT_EQ((*counts)[0], 11u);
  };
  ASSERT_TRUE(registry.for_each_changed_since(1, cached, walk2).has_value());
  EXPECT_EQ(hist_changes, 1);
}

}  // namespace
}  // namespace approx::stats
