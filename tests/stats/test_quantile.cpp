// Tests for the rank-error-bounded quantile reader
// (src/stats/quantile.hpp): rank targeting, edge intervals, overflow,
// the explicit error terms, and the decoded-Sample constructor.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "shard/registry.hpp"
#include "stats/quantile.hpp"

namespace approx::stats {
namespace {

using shard::ErrorModel;
using shard::Sample;

const std::vector<std::uint64_t> kBounds = {10, 100, 500, 1000};
// Values 1..1000: 10 in (0,10], 90 in (10,100], 400 in (100,500],
// 500 in (500,1000], 0 overflow.
const std::vector<std::uint64_t> kCounts = {10, 90, 400, 500, 0};

TEST(QuantileView, RanksLandInTheRightBuckets) {
  const QuantileView view(kBounds, kCounts, 0);
  ASSERT_TRUE(view.valid());
  EXPECT_EQ(view.total(), 1000u);
  EXPECT_EQ(view.rank_error_bound(), 0u);
  EXPECT_EQ(view.num_buckets(), 5u);

  const QuantileEstimate p50 = view.p50();
  ASSERT_TRUE(p50.valid);
  EXPECT_EQ(p50.rank, 500u);  // ⌈0.5·1000⌉
  EXPECT_EQ(p50.lower_edge, 100u);
  EXPECT_EQ(p50.upper_edge, 500u);
  EXPECT_FALSE(p50.overflow);

  const QuantileEstimate p99 = view.p99();
  ASSERT_TRUE(p99.valid);
  EXPECT_EQ(p99.rank, 990u);
  EXPECT_EQ(p99.lower_edge, 500u);
  EXPECT_EQ(p99.upper_edge, 1000u);

  // Exactly on a cumulative boundary: rank 100 is the LAST element of
  // bucket 1, so the estimate names (10,100], not the next bucket.
  const QuantileEstimate p10 = view.quantile(0.10);
  EXPECT_EQ(p10.rank, 100u);
  EXPECT_EQ(p10.lower_edge, 10u);
  EXPECT_EQ(p10.upper_edge, 100u);
}

TEST(QuantileView, ClampsQAndRank) {
  const QuantileView view(kBounds, kCounts, 0);
  const QuantileEstimate low = view.quantile(-0.5);
  EXPECT_EQ(low.q, 0.0);
  EXPECT_EQ(low.rank, 1u);  // rank clamped to ≥ 1
  EXPECT_EQ(low.upper_edge, 10u);
  const QuantileEstimate high = view.quantile(7.0);
  EXPECT_EQ(high.q, 1.0);
  EXPECT_EQ(high.rank, 1000u);
  EXPECT_EQ(high.upper_edge, 1000u);
}

TEST(QuantileView, OverflowBucketIsExplicit) {
  const std::vector<std::uint64_t> counts = {1, 0, 0, 0, 9};
  const QuantileView view(kBounds, counts, 0);
  const QuantileEstimate p90 = view.p90();
  ASSERT_TRUE(p90.valid);
  EXPECT_TRUE(p90.overflow);
  EXPECT_EQ(p90.lower_edge, 1000u);
  EXPECT_EQ(p90.upper_edge, std::numeric_limits<std::uint64_t>::max());
}

TEST(QuantileView, RankErrorIsBucketsTimesPerBucketSlack) {
  const QuantileView view(kBounds, kCounts, 32);
  EXPECT_EQ(view.rank_error_bound(), 32u * 5u);  // B·s
  EXPECT_EQ(view.p99().rank_error, 160u);
}

TEST(QuantileView, RejectsInconsistentLayouts) {
  const std::vector<std::uint64_t> short_counts = {10, 90};  // ≠ B−1+1
  EXPECT_FALSE(QuantileView(kBounds, short_counts, 0).valid());
  const std::vector<std::uint64_t> no_bounds;
  const std::vector<std::uint64_t> one_count = {5};
  EXPECT_FALSE(QuantileView(no_bounds, one_count, 0).valid());
  // An invalid view answers with invalid estimates, never garbage.
  EXPECT_FALSE(QuantileView(kBounds, short_counts, 0).p99().valid);
}

TEST(QuantileView, EmptySnapshotYieldsInvalidEstimates) {
  const std::vector<std::uint64_t> empty(kCounts.size(), 0);
  const QuantileView view(kBounds, empty, 8);
  EXPECT_TRUE(view.valid());  // the layout is fine...
  EXPECT_EQ(view.total(), 0u);
  EXPECT_FALSE(view.p50().valid);  // ...but there is no rank to name
}

TEST(QuantileView, DecodedSampleConstructorChecksTheModel) {
  Sample hist;
  hist.name = "lat";
  hist.model = ErrorModel::kHistogram;
  hist.error_bound = 16;
  hist.bucket_bounds = kBounds;
  hist.bucket_counts = kCounts;
  const QuantileView view(hist);
  ASSERT_TRUE(view.valid());
  EXPECT_EQ(view.rank_error_bound(), 16u * 5u);
  EXPECT_EQ(view.p99().upper_edge, 1000u);

  // A scalar sample — even one with a plausible-looking layout — is
  // not a histogram: callers render scalars as scalars.
  Sample scalar = hist;
  scalar.model = ErrorModel::kAdditive;
  EXPECT_FALSE(QuantileView(scalar).valid());
}

}  // namespace
}  // namespace approx::stats
