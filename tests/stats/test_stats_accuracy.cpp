// Accuracy-composition property tests for the stats layer: histograms
// driven under adversarial instrumented-sim schedules (and relaxed
// real-thread runs) must keep every bucket count inside the one-sided
// composed band the layer reports (per_bucket_bound() = S·k), and the
// quantile rank-error bound must hold END TO END — through a sequenced
// registry collect, the v4 wire encode, and a decoded
// MaterializedView on the other side.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "base/backend.hpp"
#include "base/kmath.hpp"
#include "shard/aggregator.hpp"
#include "shard/registry.hpp"
#include "sim/adapters.hpp"
#include "sim/stepper.hpp"
#include "sim/workload.hpp"
#include "stats/histogram.hpp"
#include "stats/quantile.hpp"
#include "svc/wire.hpp"

namespace approx::stats {
namespace {

using shard::ErrorModel;

constexpr unsigned kN = 4;

std::string_view payload_of(const std::string& wire) {
  return std::string_view(wire).substr(svc::kFramePrefixBytes);
}

/// Bucket of `value` for ascending finite edges `bounds` (the
/// histogram's own contract, recomputed independently as the oracle).
std::size_t oracle_bucket(const std::vector<std::uint64_t>& bounds,
                          std::uint64_t value) {
  return static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), value) - bounds.begin());
}

/// Per-bucket invoked/completed tallies shared with the checkers: a
/// bucket's true count at any instant lies in [completed, invoked].
struct GroundTruth {
  explicit GroundTruth(std::size_t buckets)
      : invoked(buckets), completed(buckets) {
    for (auto& c : invoked) c.store(0);
    for (auto& c : completed) c.store(0);
  }
  std::vector<std::atomic<std::uint64_t>> invoked;
  std::vector<std::atomic<std::uint64_t>> completed;
};

/// Asserts the one-sided composed band for every bucket: counts taken
/// from a snapshot whose interval is bracketed by `lo` (completed
/// before) and `hi` (invoked after): lo − S·k ≤ c ≤ hi, c never above
/// the truth.
void expect_in_band(const std::vector<std::uint64_t>& counts,
                    const std::vector<std::uint64_t>& lo,
                    const std::vector<std::uint64_t>& hi, std::uint64_t bound,
                    std::uint64_t seed) {
  ASSERT_EQ(counts.size(), lo.size());
  for (std::size_t b = 0; b < counts.size(); ++b) {
    ASSERT_LE(counts[b], hi[b]) << "seed " << seed << " bucket " << b
                                << ": overcounted (bound is one-sided)";
    ASSERT_LE(lo[b], base::sat_add(counts[b], bound))
        << "seed " << seed << " bucket " << b << ": undercounted past S·k";
  }
}

class HistogramAccuracySweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HistogramAccuracySweep, AdversarialSchedulesKeepBucketsInBand) {
  const std::uint64_t seed = GetParam();
  HistogramSpec spec;
  spec.bounds = {8, 64, 512, 4096};
  spec.k = 8;
  spec.shards = 2;
  sim::HistogramAdapter hist(kN, spec);
  const std::uint64_t bound = hist.per_bucket_bound();
  ASSERT_EQ(bound, 16u);  // S·k composed
  GroundTruth truth(hist.bounds().size() + 1);

  std::vector<std::function<void()>> programs;
  for (unsigned pid = 0; pid + 1 < kN; ++pid) {
    programs.emplace_back([&, pid] {
      sim::Rng rng(seed * 131 + pid + 1);
      for (int i = 0; i < 40; ++i) {
        const std::uint64_t value = rng.below(8192);
        const std::size_t b = oracle_bucket(hist.bounds(), value);
        truth.invoked[b].fetch_add(1);
        hist.record(pid, value);
        truth.completed[b].fetch_add(1);
      }
      hist.flush(pid);
    });
  }
  programs.emplace_back([&] {
    std::vector<std::uint64_t> counts;
    std::vector<std::uint64_t> lo(truth.completed.size());
    std::vector<std::uint64_t> hi(truth.invoked.size());
    for (int i = 0; i < 10; ++i) {
      for (std::size_t b = 0; b < lo.size(); ++b) {
        lo[b] = truth.completed[b].load();
      }
      hist.snapshot_into(kN - 1, counts);
      for (std::size_t b = 0; b < hi.size(); ++b) {
        hi[b] = truth.invoked[b].load();
      }
      expect_in_band(counts, lo, hi, bound, seed);
    }
  });
  sim::StepScheduler::run(std::move(programs), seed);

  // Quiescent + every recording pid flushed: exact.
  std::vector<std::uint64_t> counts;
  hist.snapshot_into(kN - 1, counts);
  for (std::size_t b = 0; b < counts.size(); ++b) {
    EXPECT_EQ(counts[b], truth.invoked[b].load())
        << "seed " << seed << " bucket " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramAccuracySweep,
                         ::testing::Range<std::uint64_t>(0, 12));

/// End-to-end, deterministic: record a known distribution, collect a
/// sequenced frame, encode it as v4 wire bytes, decode into a
/// MaterializedView, and pin the quantiles + error bounds on the far
/// side. Then drive the DELTA path with fresh observations.
TEST(StatsEndToEnd, DecodedViewPinsQuantilesAndBounds) {
  shard::RegistryT<base::DirectBackend> registry(kN);
  registry.create("scalar", {ErrorModel::kExact, 0, 1});
  HistogramSpec spec;
  spec.bounds = {10, 100, 500, 1000};
  spec.k = 16;
  spec.shards = 1;
  shard::AnyHistogram* hist =
      create_histogram<base::DirectBackend>(registry, "lat", spec);
  ASSERT_NE(hist, nullptr);
  for (std::uint64_t v = 1; v <= 1000; ++v) hist->record(0, v);
  hist->flush(0);

  shard::AggregatorT<base::DirectBackend> aggregator(registry, kN - 1, true);
  const shard::TelemetryFrame frame = aggregator.collect();
  std::string wire;
  svc::encode_full_frame(frame, 0, wire);
  ASSERT_EQ(static_cast<unsigned char>(payload_of(wire)[2]),
            svc::kVectorVersion);  // a vector entry stamps v4

  svc::MaterializedView view;
  ASSERT_EQ(view.apply(payload_of(wire)), svc::ApplyResult::kApplied);
  ASSERT_EQ(view.samples().size(), 2u);
  const shard::Sample& decoded = view.samples()[0];
  EXPECT_EQ(decoded.name, "lat");
  EXPECT_EQ(decoded.model, ErrorModel::kHistogram);
  EXPECT_EQ(decoded.error_bound, 16u);
  EXPECT_EQ(decoded.bucket_bounds, spec.bounds);
  EXPECT_EQ(decoded.bucket_counts,
            (std::vector<std::uint64_t>{10, 90, 400, 500, 0}));
  EXPECT_EQ(decoded.value, 1000u);  // decoder-derived saturated sum

  const QuantileView quantiles(decoded);
  ASSERT_TRUE(quantiles.valid());
  EXPECT_EQ(quantiles.total(), 1000u);
  EXPECT_EQ(quantiles.rank_error_bound(), 16u * 5u);  // B·s end to end
  EXPECT_EQ(quantiles.p50().lower_edge, 100u);
  EXPECT_EQ(quantiles.p50().upper_edge, 500u);
  EXPECT_EQ(quantiles.p99().lower_edge, 500u);
  EXPECT_EQ(quantiles.p99().upper_edge, 1000u);
  EXPECT_EQ(quantiles.p99().rank_error, 80u);

  // Delta path: three overflow observations ride a v4 delta and move
  // only the decoded tail bucket.
  for (int i = 0; i < 3; ++i) hist->record(0, 5000);
  hist->flush(0);
  std::vector<shard::Sample> scratch;
  const std::uint64_t version = registry.snapshot_all_into_sequenced(
      kN - 1, scratch, 0, frame.sequence + 1);
  std::vector<svc::DeltaEntry> entries;
  const auto pass = registry.for_each_changed_since(
      frame.sequence, version,
      [&](std::size_t index, const std::string&, std::uint64_t value,
          std::uint64_t, const std::vector<std::uint64_t>* counts) {
        entries.emplace_back(index, value,
                             counts != nullptr
                                 ? *counts
                                 : std::vector<std::uint64_t>{});
      });
  ASSERT_TRUE(pass.has_value());
  ASSERT_EQ(entries.size(), 1u);  // the scalar never moved
  std::string delta;
  svc::encode_delta_frame(frame.sequence + 1, version, 0, frame.sequence,
                          entries, delta);
  ASSERT_EQ(static_cast<unsigned char>(payload_of(delta)[2]),
            svc::kVectorVersion);
  ASSERT_EQ(view.apply(payload_of(delta)), svc::ApplyResult::kApplied);
  const shard::Sample& after = view.samples()[0];
  EXPECT_EQ(after.bucket_counts,
            (std::vector<std::uint64_t>{10, 90, 400, 500, 3}));
  EXPECT_EQ(after.value, 1003u);
  const QuantileView after_view(after);
  EXPECT_EQ(after_view.quantile(1.0).upper_edge,
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_TRUE(after_view.quantile(1.0).overflow);
}

/// The same end-to-end pipe under genuine concurrency: real threads
/// hammer the histogram while sequenced collects stream v4 frames into
/// a view; every decoded bucket must stay in the one-sided band and
/// the decoded total must honor the rank-error bound. After a global
/// flush, the decoded view is exact.
TEST(StatsEndToEnd, RelaxedThreadsDecodedViewStaysInBand) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    shard::RegistryT<base::RelaxedDirectBackend> registry(kN);
    HistogramSpec spec;
    spec.bounds = {16, 256, 4096};
    spec.k = 32;
    spec.shards = 2;
    shard::AnyHistogram* hist =
        create_histogram<base::RelaxedDirectBackend>(registry, "lat", spec);
    ASSERT_NE(hist, nullptr);
    const std::uint64_t bound = 64;  // S·k
    GroundTruth truth(spec.bounds.size() + 1);

    std::atomic<bool> go{false};
    std::vector<std::thread> recorders;
    for (unsigned pid = 0; pid + 1 < kN; ++pid) {
      recorders.emplace_back([&, pid] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        sim::Rng rng(seed * 131 + pid + 1);
        for (int i = 0; i < 4000; ++i) {
          const std::uint64_t value = rng.below(8192);
          const std::size_t b = oracle_bucket(spec.bounds, value);
          truth.invoked[b].fetch_add(1);
          hist->record(pid, value);
          truth.completed[b].fetch_add(1);
        }
      });
    }

    shard::AggregatorT<base::RelaxedDirectBackend> aggregator(registry,
                                                              kN - 1, true);
    svc::MaterializedView view;
    std::string wire;
    std::vector<std::uint64_t> lo(truth.completed.size());
    std::vector<std::uint64_t> hi(truth.invoked.size());
    go.store(true, std::memory_order_release);
    for (int pass = 0; pass < 20; ++pass) {
      for (std::size_t b = 0; b < lo.size(); ++b) {
        lo[b] = truth.completed[b].load();
      }
      const shard::TelemetryFrame frame = aggregator.collect();
      svc::encode_full_frame(frame, 0, wire);
      ASSERT_EQ(view.apply(payload_of(wire)), svc::ApplyResult::kApplied);
      for (std::size_t b = 0; b < hi.size(); ++b) {
        hi[b] = truth.invoked[b].load();
      }
      const shard::Sample& decoded = view.samples()[0];
      expect_in_band(decoded.bucket_counts, lo, hi, bound, seed);
      // Rank-error bound end to end: the decoded total trails the true
      // total by at most B·s (and never exceeds what was invoked).
      const QuantileView quantiles(decoded);
      ASSERT_TRUE(quantiles.valid());
      std::uint64_t lo_total = 0;
      std::uint64_t hi_total = 0;
      for (std::size_t b = 0; b < lo.size(); ++b) {
        lo_total += lo[b];
        hi_total += hi[b];
      }
      ASSERT_LE(quantiles.total(), hi_total) << "seed " << seed;
      ASSERT_LE(lo_total,
                base::sat_add(quantiles.total(), quantiles.rank_error_bound()))
          << "seed " << seed;
    }
    for (std::thread& thread : recorders) thread.join();
    for (unsigned pid = 0; pid + 1 < kN; ++pid) hist->flush(pid);

    const shard::TelemetryFrame last = aggregator.collect();
    svc::encode_full_frame(last, 0, wire);
    ASSERT_EQ(view.apply(payload_of(wire)), svc::ApplyResult::kApplied);
    const shard::Sample& exact = view.samples()[0];
    for (std::size_t b = 0; b < exact.bucket_counts.size(); ++b) {
      EXPECT_EQ(exact.bucket_counts[b], truth.invoked[b].load())
          << "seed " << seed << " bucket " << b;
    }
  }
}

}  // namespace
}  // namespace approx::stats
