// Tests for Algorithm 2 (bounded k-multiplicative max register) and the
// unbounded plug-in.
#include "core/kmult_max_register.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

#include "base/kmath.hpp"
#include "base/step_recorder.hpp"
#include "core/approx.hpp"
#include "core/kmult_unbounded_max_register.hpp"
#include "exact/bounded_max_register.hpp"
#include "sim/history.hpp"
#include "sim/lin_check.hpp"
#include "sim/workload.hpp"

namespace approx::core {
namespace {

TEST(KMultMaxRegister, InitiallyZero) {
  KMultMaxRegister reg(1 << 10, 2);
  EXPECT_EQ(reg.read(), 0u);
}

TEST(KMultMaxRegister, WriteZeroIsNoOp) {
  KMultMaxRegister reg(1 << 10, 2);
  reg.write(0);
  EXPECT_EQ(reg.read(), 0u);
}

TEST(KMultMaxRegister, ReadIsKToThePower) {
  KMultMaxRegister reg(1000, 3);
  reg.write(1);   // p = ⌊log₃1⌋+1 = 1
  EXPECT_EQ(reg.read(), 3u);
  reg.write(2);   // still p = 1
  EXPECT_EQ(reg.read(), 3u);
  reg.write(3);   // p = 2
  EXPECT_EQ(reg.read(), 9u);
  reg.write(26);  // p = 3 (27 > 26 ⇒ ⌊log₃26⌋ = 2)
  EXPECT_EQ(reg.read(), 27u);
  reg.write(27);  // p = 4
  EXPECT_EQ(reg.read(), 81u);
}

// The algorithm's band is one-sided: v ≤ read() ≤ v·k (stronger than the
// two-sided spec). Check exhaustively for small m and several k.
TEST(KMultMaxRegister, OneSidedBandExhaustive) {
  for (std::uint64_t k : {2u, 3u, 4u, 7u}) {
    const std::uint64_t m = 600;
    for (std::uint64_t v = 1; v < m; ++v) {
      KMultMaxRegister reg(m, k);
      reg.write(v);
      const std::uint64_t x = reg.read();
      ASSERT_GE(x, v) << "k=" << k << " v=" << v;
      ASSERT_LE(x, base::sat_mul(v, k)) << "k=" << k << " v=" << v;
      ASSERT_TRUE(within_mult_band(x, v, k));
    }
  }
}

TEST(KMultMaxRegister, TracksMaximumNotLatest) {
  KMultMaxRegister reg(1 << 16, 2);
  reg.write(5000);
  reg.write(3);  // smaller: read must not regress
  const std::uint64_t x = reg.read();
  EXPECT_TRUE(within_mult_band(x, 5000, 2)) << x;
}

TEST(KMultMaxRegister, RandomSequencesStayInBand) {
  sim::Rng rng(0xAB);
  for (int trial = 0; trial < 40; ++trial) {
    const std::uint64_t k = 2 + rng.below(6);
    const std::uint64_t m = 16 + rng.below(1u << 20);
    KMultMaxRegister reg(m, k);
    std::uint64_t true_max = 0;
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t v = rng.below(m);
      reg.write(v);
      true_max = std::max(true_max, v);
      const std::uint64_t x = reg.read();
      ASSERT_TRUE(within_mult_band(x, true_max, k))
          << "k=" << k << " m=" << m << " max=" << true_max << " x=" << x;
    }
  }
}

TEST(KMultMaxRegister, ReadsAreMonotone) {
  KMultMaxRegister reg(1 << 20, 3);
  sim::Rng rng(5);
  std::uint64_t previous = 0;
  for (int i = 0; i < 400; ++i) {
    reg.write(rng.below(1 << 20));
    const std::uint64_t x = reg.read();
    ASSERT_GE(x, previous);
    previous = x;
  }
}

TEST(KMultMaxRegister, BoundaryValues) {
  const std::uint64_t m = 1 << 12;
  KMultMaxRegister reg(m, 2);
  reg.write(m - 1);  // largest writable value
  const std::uint64_t x = reg.read();
  EXPECT_TRUE(within_mult_band(x, m - 1, 2)) << x;
}

// Theorem IV.2: worst-case step complexity O(log₂ log_k m) — doubly
// logarithmic, exponentially better than the exact register's Θ(log₂ m).
TEST(KMultMaxRegister, StepComplexityDoublyLogarithmic) {
  for (std::uint64_t log2m : {16u, 32u, 60u}) {
    const std::uint64_t m = std::uint64_t{1} << log2m;
    const std::uint64_t k = 2;
    KMultMaxRegister reg(m, k);
    // Index register holds ⌊log₂(m−1)⌋+2 ≈ log2m values ⇒ depth ≈
    // ⌈log₂ log₂ m⌉. Every op ≤ depth+1 steps.
    const std::uint64_t bound = base::ceil_log2(log2m + 2) + 1;
    reg.write(m - 1);  // deepest possible path
    const std::uint64_t write_steps =
        base::steps_of([&] { reg.write(m - 1); });
    const std::uint64_t read_steps = base::steps_of([&] { (void)reg.read(); });
    EXPECT_LE(write_steps, bound) << "m=2^" << log2m;
    EXPECT_LE(read_steps, bound) << "m=2^" << log2m;
  }
}

TEST(KMultMaxRegister, ExponentialImprovementOverExact) {
  // The headline separation: for m = 2^60, exact reads walk ~60 levels,
  // approximate reads walk ~⌈log₂ 62⌉ = 6.
  const std::uint64_t m = std::uint64_t{1} << 60;
  exact::BoundedMaxRegister exact_reg(m);
  KMultMaxRegister approx_reg(m, 2);
  exact_reg.write(m - 1);
  approx_reg.write(m - 1);
  const std::uint64_t exact_steps =
      base::steps_of([&] { (void)exact_reg.read(); });
  const std::uint64_t approx_steps =
      base::steps_of([&] { (void)approx_reg.read(); });
  EXPECT_GE(exact_steps, 60u);
  EXPECT_LE(approx_steps, 7u);
}

TEST(KMultMaxRegister, ConcurrentHistoryPassesChecker) {
  constexpr unsigned kThreads = 4;
  const std::uint64_t k = 3;
  const std::uint64_t m = 1 << 18;
  KMultMaxRegister reg(m, k);
  sim::HistoryRecorder history(kThreads);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (unsigned pid = 0; pid < kThreads; ++pid) {
    threads.emplace_back([&, pid] {
      sim::Rng rng(pid + 31);
      while (!go.load(std::memory_order_acquire)) {}
      for (int i = 0; i < 1500; ++i) {
        if (rng.chance(0.4)) {
          history.record_read(pid, [&] { return reg.read(); });
        } else {
          const std::uint64_t v = 1 + rng.below(m - 1);
          history.record_write(pid, v, [&] { reg.write(v); });
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();

  const auto result = sim::check_max_register_history(history.merged(), k);
  EXPECT_TRUE(result.ok) << result.violation;
}

// Parameterized sweep: (m, k) grid, write sequences against the band.
class KMultMaxRegisterSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {
};

TEST_P(KMultMaxRegisterSweep, QuiescentBand) {
  const auto [m, k] = GetParam();
  KMultMaxRegister reg(m, k);
  sim::Rng rng(m * 7 + k);
  std::uint64_t true_max = 0;
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t v = rng.below(m);
    reg.write(v);
    true_max = std::max(true_max, v);
  }
  EXPECT_TRUE(within_mult_band(reg.read(), true_max, k))
      << "m=" << m << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KMultMaxRegisterSweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(2, 16, 1000, 1u << 20,
                                                        std::uint64_t{1} << 40),
                       ::testing::Values<std::uint64_t>(2, 3, 10, 100)));

// ----------------------------------------------------------------------
// Unbounded plug-in
// ----------------------------------------------------------------------

TEST(KMultUnboundedMaxRegister, InitiallyZero) {
  KMultUnboundedMaxRegister reg(2);
  EXPECT_EQ(reg.read(), 0u);
}

TEST(KMultUnboundedMaxRegister, BandOverFullDomain) {
  KMultUnboundedMaxRegister reg(2);
  std::uint64_t true_max = 0;
  sim::Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t v = rng.log_uniform(base::kU64Max / 2);
    reg.write(v);
    true_max = std::max(true_max, v);
    ASSERT_TRUE(within_mult_band(reg.read(), true_max, 2))
        << "max=" << true_max << " read=" << reg.read();
  }
}

TEST(KMultUnboundedMaxRegister, SaturationStaysInBand) {
  KMultUnboundedMaxRegister reg(3);
  reg.write(base::kU64Max);
  const std::uint64_t x = reg.read();
  EXPECT_TRUE(within_mult_band(x, base::kU64Max, 3)) << x;
}

TEST(KMultUnboundedMaxRegister, SubLogarithmicSteps) {
  // Claimed property: sub-logarithmic in the value domain. The exponent
  // register has ≤ 66 values ⇒ ≤ ⌈log₂66⌉+1 = 8 steps per op.
  KMultUnboundedMaxRegister reg(2);
  reg.write(std::uint64_t{1} << 62);
  EXPECT_LE(base::steps_of([&] { (void)reg.read(); }), 8u);
  EXPECT_LE(base::steps_of([&] { reg.write(base::kU64Max); }), 8u);
}

TEST(KMultUnboundedMaxRegister, ConcurrentHistoryPassesChecker) {
  constexpr unsigned kThreads = 4;
  const std::uint64_t k = 2;
  KMultUnboundedMaxRegister reg(k);
  sim::HistoryRecorder history(kThreads);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (unsigned pid = 0; pid < kThreads; ++pid) {
    threads.emplace_back([&, pid] {
      sim::Rng rng(pid + 77);
      while (!go.load(std::memory_order_acquire)) {}
      for (int i = 0; i < 1500; ++i) {
        if (rng.chance(0.4)) {
          history.record_read(pid, [&] { return reg.read(); });
        } else {
          const std::uint64_t v = rng.log_uniform(std::uint64_t{1} << 50);
          history.record_write(pid, v, [&] { reg.write(v); });
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();

  const auto result = sim::check_max_register_history(history.merged(), k);
  EXPECT_TRUE(result.ok) << result.violation;
}

}  // namespace
}  // namespace approx::core
