// Backend-equivalence suite: the DirectBackend and InstrumentedBackend
// instantiations of every algorithm must return identical values on
// identical single-threaded operation sequences — the policy split
// changes *what a primitive costs*, never *what it does*. This is what
// lets model-checking results from the instrumented build (stepper,
// lin-check, perturbation) speak about the direct build production code.
//
// Also pins the zero-overhead side of the contract: direct base objects
// are layout-identical to their atomics, allocate no ObjectIds, and
// record no steps even when a recorder is installed.
#include <gtest/gtest.h>

#include <cstdint>

#include "base/backend.hpp"
#include "base/register.hpp"
#include "base/step_recorder.hpp"
#include "base/test_and_set.hpp"
#include "core/kadditive_counter.hpp"
#include "core/kmult_bounded_counter.hpp"
#include "core/kmult_counter.hpp"
#include "core/kmult_counter_corrected.hpp"
#include "core/kmult_max_register.hpp"
#include "core/kmult_unbounded_max_register.hpp"
#include "exact/aach_counter.hpp"
#include "exact/bounded_max_register.hpp"
#include "exact/collect_counter.hpp"
#include "exact/fetch_add_counter.hpp"
#include "exact/snapshot_counter.hpp"
#include "exact/unbounded_max_register.hpp"
#include "sim/workload.hpp"

namespace approx {
namespace {

// Deterministic op mix shared by both instances: ~20% reads, increments
// otherwise, pids round-robin with seeded jitter.
template <typename Direct, typename Instrumented, typename Inc,
          typename Read>
void expect_equivalent_counters(Direct& direct, Instrumented& instrumented,
                                unsigned n, Inc&& inc, Read&& read,
                                std::uint64_t ops, std::uint64_t seed) {
  sim::Rng rng(seed);
  for (std::uint64_t i = 0; i < ops; ++i) {
    const auto pid = static_cast<unsigned>(rng.below(n));
    if (rng.chance(0.2)) {
      ASSERT_EQ(read(direct, pid), read(instrumented, pid))
          << "diverged at op " << i;
    } else {
      inc(direct, pid);
      inc(instrumented, pid);
    }
  }
  for (unsigned pid = 0; pid < n; ++pid) {
    EXPECT_EQ(read(direct, pid), read(instrumented, pid));
  }
}

template <template <typename> class CounterT>
void check_pid_counter(unsigned n, std::uint64_t k, std::uint64_t ops) {
  CounterT<base::DirectBackend> direct(n, k);
  CounterT<base::InstrumentedBackend> instrumented(n, k);
  expect_equivalent_counters(
      direct, instrumented, n,
      [](auto& c, unsigned pid) { c.increment(pid); },
      [](auto& c, unsigned pid) { return c.read(pid); }, ops, 0xBEEF + n);
}

TEST(BackendEquivalence, KMultCounter) {
  check_pid_counter<core::KMultCounterT>(1, 2, 5'000);
  check_pid_counter<core::KMultCounterT>(4, 2, 20'000);
  check_pid_counter<core::KMultCounterT>(8, 3, 20'000);
}

TEST(BackendEquivalence, KMultCounterCorrected) {
  check_pid_counter<core::KMultCounterCorrectedT>(1, 2, 5'000);
  check_pid_counter<core::KMultCounterCorrectedT>(4, 2, 20'000);
  check_pid_counter<core::KMultCounterCorrectedT>(8, 3, 20'000);
}

TEST(BackendEquivalence, KMultCounterCorrectedReadFast) {
  core::KMultCounterCorrectedT<base::DirectBackend> direct(4, 3);
  core::KMultCounterCorrectedT<base::InstrumentedBackend> instrumented(4, 3);
  expect_equivalent_counters(
      direct, instrumented, 4,
      [](auto& c, unsigned pid) { c.increment(pid); },
      [](auto& c, unsigned pid) { return c.read_fast(pid); }, 20'000, 0xF457);
}

TEST(BackendEquivalence, KMultBoundedCounter) {
  const std::uint64_t m = 50'000;
  core::KMultBoundedCounterT<base::DirectBackend> direct(4, 3, m);
  core::KMultBoundedCounterT<base::InstrumentedBackend> instrumented(4, 3, m);
  expect_equivalent_counters(
      direct, instrumented, 4,
      [](auto& c, unsigned pid) { c.increment(pid); },
      [](auto& c, unsigned pid) { return c.read(pid); }, 20'000, 0xB0BB);
}

TEST(BackendEquivalence, KAdditiveCounter) {
  core::KAdditiveCounterT<base::DirectBackend> direct(4, 64);
  core::KAdditiveCounterT<base::InstrumentedBackend> instrumented(4, 64);
  expect_equivalent_counters(
      direct, instrumented, 4,
      [](auto& c, unsigned pid) { c.increment(pid); },
      [](auto& c, unsigned) { return c.read(); }, 20'000, 0xADD);
}

TEST(BackendEquivalence, ExactCounters) {
  const unsigned n = 4;
  exact::CollectCounterT<base::DirectBackend> collect_d(n);
  exact::CollectCounterT<base::InstrumentedBackend> collect_i(n);
  expect_equivalent_counters(
      collect_d, collect_i, n,
      [](auto& c, unsigned pid) { c.increment(pid); },
      [](auto& c, unsigned) { return c.read(); }, 20'000, 0xC011);

  exact::AachCounterT<base::DirectBackend> aach_d(n);
  exact::AachCounterT<base::InstrumentedBackend> aach_i(n);
  expect_equivalent_counters(
      aach_d, aach_i, n, [](auto& c, unsigned pid) { c.increment(pid); },
      [](auto& c, unsigned) { return c.read(); }, 5'000, 0xAAC4);

  exact::SnapshotCounterT<base::DirectBackend> snap_d(n);
  exact::SnapshotCounterT<base::InstrumentedBackend> snap_i(n);
  expect_equivalent_counters(
      snap_d, snap_i, n, [](auto& c, unsigned pid) { c.increment(pid); },
      [](auto& c, unsigned) { return c.read(); }, 2'000, 0x5A45);

  exact::FetchAddCounterT<base::DirectBackend> faa_d;
  exact::FetchAddCounterT<base::InstrumentedBackend> faa_i;
  expect_equivalent_counters(
      faa_d, faa_i, n, [](auto& c, unsigned) { c.increment(); },
      [](auto& c, unsigned) { return c.read(); }, 20'000, 0xFAA);
}

template <typename Direct, typename Instrumented>
void expect_equivalent_max_registers(Direct& direct,
                                     Instrumented& instrumented,
                                     std::uint64_t max_value,
                                     std::uint64_t ops, std::uint64_t seed) {
  sim::Rng rng(seed);
  for (std::uint64_t i = 0; i < ops; ++i) {
    if (rng.chance(0.4)) {
      ASSERT_EQ(direct.read(), instrumented.read()) << "diverged at op " << i;
    } else {
      const std::uint64_t value = rng.log_uniform(max_value);
      direct.write(value);
      instrumented.write(value);
    }
  }
  EXPECT_EQ(direct.read(), instrumented.read());
}

TEST(BackendEquivalence, BoundedMaxRegisters) {
  const std::uint64_t m = std::uint64_t{1} << 32;
  exact::BoundedMaxRegisterT<base::DirectBackend> exact_d(m);
  exact::BoundedMaxRegisterT<base::InstrumentedBackend> exact_i(m);
  expect_equivalent_max_registers(exact_d, exact_i, m - 1, 5'000, 0xE4AC);

  core::KMultMaxRegisterT<base::DirectBackend> kmult_d(m, 3);
  core::KMultMaxRegisterT<base::InstrumentedBackend> kmult_i(m, 3);
  expect_equivalent_max_registers(kmult_d, kmult_i, m - 1, 5'000, 0x7143);
}

TEST(BackendEquivalence, UnboundedMaxRegisters) {
  exact::UnboundedMaxRegisterT<base::DirectBackend> exact_d;
  exact::UnboundedMaxRegisterT<base::InstrumentedBackend> exact_i;
  expect_equivalent_max_registers(exact_d, exact_i, base::kU64Max, 5'000,
                                  0x0B0);

  core::KMultUnboundedMaxRegisterT<base::DirectBackend> kmult_d(4);
  core::KMultUnboundedMaxRegisterT<base::InstrumentedBackend> kmult_i(4);
  expect_equivalent_max_registers(kmult_d, kmult_i, base::kU64Max, 5'000,
                                  0x1B1);
}

// --- RelaxedDirectBackend: same values, weaker orders ----------------
//
// Single-threaded operation sequences are deterministic under ANY
// memory-order mapping, so the relaxed instantiation of every algorithm
// must return exactly the instrumented values — the role mapping changes
// *how a primitive is fenced*, never *what it does*. (Concurrent
// behaviour of the relaxed build is covered by the TSan suite in
// tests/integration/test_relaxed_threads.cpp and the stepper-free
// property tests in tests/shard/test_sharded_accuracy.cpp.)

template <template <typename> class CounterT>
void check_pid_counter_relaxed(unsigned n, std::uint64_t k,
                               std::uint64_t ops) {
  CounterT<base::RelaxedDirectBackend> relaxed(n, k);
  CounterT<base::InstrumentedBackend> instrumented(n, k);
  expect_equivalent_counters(
      relaxed, instrumented, n,
      [](auto& c, unsigned pid) { c.increment(pid); },
      [](auto& c, unsigned pid) { return c.read(pid); }, ops, 0xBEEF + n);
}

TEST(BackendEquivalence, RelaxedKMultCounters) {
  check_pid_counter_relaxed<core::KMultCounterT>(4, 2, 20'000);
  check_pid_counter_relaxed<core::KMultCounterCorrectedT>(8, 3, 20'000);
}

TEST(BackendEquivalence, RelaxedKMultCounterCorrectedReadFast) {
  core::KMultCounterCorrectedT<base::RelaxedDirectBackend> relaxed(4, 3);
  core::KMultCounterCorrectedT<base::InstrumentedBackend> instrumented(4, 3);
  expect_equivalent_counters(
      relaxed, instrumented, 4,
      [](auto& c, unsigned pid) { c.increment(pid); },
      [](auto& c, unsigned pid) { return c.read_fast(pid); }, 20'000, 0xF457);
}

TEST(BackendEquivalence, RelaxedExactAndAdditiveCounters) {
  const unsigned n = 4;
  exact::CollectCounterT<base::RelaxedDirectBackend> collect_r(n);
  exact::CollectCounterT<base::InstrumentedBackend> collect_i(n);
  expect_equivalent_counters(
      collect_r, collect_i, n,
      [](auto& c, unsigned pid) { c.increment(pid); },
      [](auto& c, unsigned) { return c.read(); }, 20'000, 0xC011);

  exact::AachCounterT<base::RelaxedDirectBackend> aach_r(n);
  exact::AachCounterT<base::InstrumentedBackend> aach_i(n);
  expect_equivalent_counters(
      aach_r, aach_i, n, [](auto& c, unsigned pid) { c.increment(pid); },
      [](auto& c, unsigned) { return c.read(); }, 5'000, 0xAAC4);

  exact::SnapshotCounterT<base::RelaxedDirectBackend> snap_r(n);
  exact::SnapshotCounterT<base::InstrumentedBackend> snap_i(n);
  expect_equivalent_counters(
      snap_r, snap_i, n, [](auto& c, unsigned pid) { c.increment(pid); },
      [](auto& c, unsigned) { return c.read(); }, 2'000, 0x5A45);

  exact::FetchAddCounterT<base::RelaxedDirectBackend> faa_r;
  exact::FetchAddCounterT<base::InstrumentedBackend> faa_i;
  expect_equivalent_counters(
      faa_r, faa_i, n, [](auto& c, unsigned) { c.increment(); },
      [](auto& c, unsigned) { return c.read(); }, 20'000, 0xFAA);

  core::KAdditiveCounterT<base::RelaxedDirectBackend> add_r(n, 64);
  core::KAdditiveCounterT<base::InstrumentedBackend> add_i(n, 64);
  expect_equivalent_counters(
      add_r, add_i, n, [](auto& c, unsigned pid) { c.increment(pid); },
      [](auto& c, unsigned) { return c.read(); }, 20'000, 0xADD);
}

TEST(BackendEquivalence, RelaxedMaxRegisters) {
  const std::uint64_t m = std::uint64_t{1} << 32;
  exact::BoundedMaxRegisterT<base::RelaxedDirectBackend> exact_r(m);
  exact::BoundedMaxRegisterT<base::InstrumentedBackend> exact_i(m);
  expect_equivalent_max_registers(exact_r, exact_i, m - 1, 5'000, 0xE4AC);

  core::KMultMaxRegisterT<base::RelaxedDirectBackend> kmult_r(m, 3);
  core::KMultMaxRegisterT<base::InstrumentedBackend> kmult_i(m, 3);
  expect_equivalent_max_registers(kmult_r, kmult_i, m - 1, 5'000, 0x7143);

  exact::UnboundedMaxRegisterT<base::RelaxedDirectBackend> unb_r;
  exact::UnboundedMaxRegisterT<base::InstrumentedBackend> unb_i;
  expect_equivalent_max_registers(unb_r, unb_i, base::kU64Max, 5'000, 0x0B0);

  core::KMultUnboundedMaxRegisterT<base::RelaxedDirectBackend> kunb_r(4);
  core::KMultUnboundedMaxRegisterT<base::InstrumentedBackend> kunb_i(4);
  expect_equivalent_max_registers(kunb_r, kunb_i, base::kU64Max, 5'000,
                                  0x1B1);
}

// --- the zero-overhead side of the policy contract -------------------

TEST(DirectBackendContract, NoStepsRecordedEvenWithRecorderInstalled) {
  base::Register<std::uint64_t, base::DirectBackend> reg(1);
  base::TasBitT<base::DirectBackend> bit;
  base::StepRecorder recorder(/*track_objects=*/true);
  {
    base::ScopedRecording on(recorder);
    reg.write(5);
    (void)reg.read();
    (void)bit.test_and_set();
    (void)bit.read();
  }
  EXPECT_EQ(recorder.total(), 0u);
  EXPECT_EQ(recorder.distinct_objects(), 0u);
}

TEST(DirectBackendContract, NoObjectIdsAllocated) {
  const base::ObjectId before = base::next_object_id();
  base::Register<std::uint64_t, base::DirectBackend> reg;
  base::TasBitT<base::DirectBackend> bit;
  core::KMultCounterT<base::DirectBackend> counter(4, 2);
  for (int i = 0; i < 100; ++i) counter.increment(i % 4);
  const base::ObjectId after = base::next_object_id();
  EXPECT_EQ(after, before + 1);  // only our two probe draws
  EXPECT_EQ(reg.id(), base::kInvalidObjectId);
  EXPECT_EQ(bit.id(), base::kInvalidObjectId);
}

TEST(DirectBackendContract, LayoutIdenticalToRawAtomics) {
  EXPECT_EQ(sizeof(base::Register<std::uint64_t, base::DirectBackend>),
            sizeof(std::atomic<std::uint64_t>));
  EXPECT_EQ(sizeof(base::TasBitT<base::DirectBackend>),
            sizeof(std::atomic<std::uint8_t>));
  // The instrumented builds carry exactly one ObjectId on top.
  EXPECT_EQ(sizeof(base::Register<std::uint64_t>),
            sizeof(std::atomic<std::uint64_t>) + sizeof(base::ObjectId));
}

TEST(RelaxedDirectBackendContract, ZeroOverheadAndRoleMapping) {
  // Cost model identical to DirectBackend: no steps, no ids, no storage.
  base::Register<std::uint64_t, base::RelaxedDirectBackend> reg(1);
  base::TasBitT<base::RelaxedDirectBackend> bit;
  base::StepRecorder recorder(/*track_objects=*/true);
  {
    base::ScopedRecording on(recorder);
    reg.write(5);
    (void)reg.read();
    (void)bit.test_and_set();
  }
  EXPECT_EQ(recorder.total(), 0u);
  EXPECT_EQ(reg.id(), base::kInvalidObjectId);
  EXPECT_EQ(
      sizeof(base::Register<std::uint64_t, base::RelaxedDirectBackend>),
      sizeof(std::atomic<std::uint64_t>));

  // The role mapping is the whole point; pin it.
  using base::OrderRole;
  static_assert(base::RelaxedDirectBackend::order(OrderRole::kLoadAcquire) ==
                std::memory_order_acquire);
  static_assert(base::RelaxedDirectBackend::order(OrderRole::kStoreRelease) ==
                std::memory_order_release);
  static_assert(base::RelaxedDirectBackend::order(OrderRole::kRmwAcqRel) ==
                std::memory_order_acq_rel);
  static_assert(base::RelaxedDirectBackend::order(OrderRole::kLoadRelaxed) ==
                std::memory_order_relaxed);
  // ... while the seq_cst backends ignore every role (model fidelity).
  static_assert(base::DirectBackend::order(OrderRole::kLoadRelaxed) ==
                std::memory_order_seq_cst);
  static_assert(base::InstrumentedBackend::order(OrderRole::kRmwRelaxed) ==
                std::memory_order_seq_cst);
}

TEST(InstrumentedBackendContract, StepsStillRecorded) {
  base::Register<std::uint64_t> reg;  // default = InstrumentedBackend
  base::StepRecorder recorder;
  {
    base::ScopedRecording on(recorder);
    reg.write(1);
    (void)reg.read();
  }
  EXPECT_EQ(recorder.writes(), 1u);
  EXPECT_EQ(recorder.reads(), 1u);
}

}  // namespace
}  // namespace approx
