// Tests for Algorithm 1: the wait-free k-multiplicative-accurate
// unbounded counter. Each suite maps to a lemma/claim of the paper; see
// DESIGN.md §5 for the invariant inventory.
#include "core/kmult_counter.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

#include "base/kmath.hpp"
#include "base/step_recorder.hpp"
#include "core/approx.hpp"
#include "sim/history.hpp"
#include "sim/lin_check.hpp"
#include "sim/workload.hpp"

namespace approx::core {
namespace {

using base::pow_k;

// ----------------------------------------------------------------------
// ReturnValue(p, q) — paper lines 30–34
// ----------------------------------------------------------------------

TEST(ReturnValue, HandComputedCases) {
  KMultCounter counter(4, /*k=*/2);
  // ReturnValue(p, q) = k(1 + p·k^{q+1} + Σ_{l=1..q} k^{l+1})
  EXPECT_EQ(counter.return_value(0, 0), 2u);        // 2·(1)
  EXPECT_EQ(counter.return_value(1, 0), 2u * 3);    // 2·(1 + 1·2)
  EXPECT_EQ(counter.return_value(0, 1), 2u * 5);    // 2·(1 + 4)
  EXPECT_EQ(counter.return_value(1, 1), 2u * 9);    // 2·(1 + 4 + 4)
  EXPECT_EQ(counter.return_value(0, 2), 2u * 13);   // 2·(1 + 4 + 8)
  EXPECT_EQ(counter.return_value(2, 2), 2u * 29);   // 2·(1 + 4 + 8 + 2·8)
}

TEST(ReturnValue, GeneralFormula) {
  for (std::uint64_t k : {2u, 3u, 5u}) {
    KMultCounter counter(2, k);
    for (std::uint64_t q = 0; q <= 4; ++q) {
      for (std::uint64_t p = 0; p < k; ++p) {
        std::uint64_t expected = 1 + p * pow_k(k, q + 1);
        for (std::uint64_t l = 1; l <= q; ++l) expected += pow_k(k, l + 1);
        expected *= k;
        EXPECT_EQ(counter.return_value(p, q), expected)
            << "k=" << k << " p=" << p << " q=" << q;
      }
    }
  }
}

TEST(ReturnValue, MonotoneInSwitchIndex) {
  // ReturnValue must be non-decreasing in the scanned switch position
  // h = qk + p over positions p ∈ {0, 1}, matching Lemma III.2 ordering.
  KMultCounter counter(4, /*k=*/3);
  std::uint64_t previous = 0;
  for (std::uint64_t q = 0; q <= 6; ++q) {
    for (std::uint64_t p : {0u, 1u}) {
      if (q == 0 && p == 0) continue;
      const std::uint64_t value = counter.return_value(p, q);
      EXPECT_GE(value, previous) << "p=" << p << " q=" << q;
      previous = value;
    }
  }
}

// ----------------------------------------------------------------------
// Sequential accuracy (definition of the k-multiplicative band)
// ----------------------------------------------------------------------

TEST(KMultCounterSeq, ZeroBeforeAnyIncrement) {
  KMultCounter counter(4, 2);
  EXPECT_EQ(counter.read(0), 0u);
  EXPECT_EQ(counter.read(3), 0u);
}

TEST(KMultCounterSeq, FirstIncrementVisible) {
  KMultCounter counter(4, 2);
  counter.increment(0);
  const std::uint64_t x = counter.read(1);
  EXPECT_TRUE(within_mult_band(x, 1, 2)) << x;
}

TEST(KMultCounterSeq, SingleProcessLongRun) {
  // n = 1 ⇒ any k ≥ 2 satisfies k ≥ √n.
  KMultCounter counter(1, 2);
  for (std::uint64_t v = 1; v <= 5000; ++v) {
    counter.increment(0);
    const std::uint64_t x = counter.read(0);
    ASSERT_TRUE(within_mult_band(x, v, 2))
        << "v=" << v << " read " << x;
  }
}

// Parameterized sweep over (n, k, total increments): after quiescence,
// every read from every process is within the band. Covers the paper's
// k ≥ √n regime.
class KMultCounterAccuracy
    : public ::testing::TestWithParam<std::tuple<unsigned, std::uint64_t, int>> {
};

TEST_P(KMultCounterAccuracy, SequentialRoundRobinBand) {
  const auto [n, k_extra, total] = GetParam();
  const std::uint64_t k = base::ceil_sqrt(n) + k_extra;
  KMultCounter counter(n, std::max<std::uint64_t>(k, 2));
  ASSERT_TRUE(counter.accuracy_guaranteed());
  // REPRODUCTION NOTE: the paper's algorithm can under-report beyond the
  // band while only switch_0 is set (bootstrap transient; see
  // KMultCounterDeviation below and EXPERIMENTS.md). The full band is
  // only guaranteed once v exceeds the maximum increments the transient
  // can hide, 1 + n(k−1); the upper side x ≤ v·k holds always.
  const std::uint64_t bootstrap =
      1 + static_cast<std::uint64_t>(n) * (counter.k() - 1);
  auto assert_banded = [&](std::uint64_t x, std::uint64_t v) {
    ASSERT_LE(x, base::sat_mul(v, counter.k()))
        << "n=" << n << " k=" << counter.k() << " v=" << v << " x=" << x;
    if (v > bootstrap) {
      ASSERT_TRUE(within_mult_band(x, v, counter.k()))
          << "n=" << n << " k=" << counter.k() << " v=" << v << " x=" << x;
    }
  };
  for (int i = 0; i < total; ++i) {
    counter.increment(static_cast<unsigned>(i) % n);
    if (i % 37 == 0) {
      const auto v = static_cast<std::uint64_t>(i + 1);
      const std::uint64_t x = counter.read((static_cast<unsigned>(i) + 1) % n);
      assert_banded(x, v);
    }
  }
  const auto v = static_cast<std::uint64_t>(total);
  for (unsigned pid = 0; pid < n; ++pid) {
    assert_banded(counter.read(pid), v);
  }
}

// Pins the reproduction finding: with n = 25, k = 5 = √n (the paper's
// precondition met), 38 round-robin increments leave only switch_0 set,
// a read returns k = 5, and 38/5 > 5 violates the band. If this test
// ever fails, the faithful implementation no longer exhibits the paper's
// q = 0 gap — re-examine both.
TEST(KMultCounterDeviation, BootstrapTransientViolatesLowerBand) {
  constexpr unsigned kN = 25;
  const std::uint64_t k = 5;
  KMultCounter counter(kN, k);
  ASSERT_TRUE(counter.accuracy_guaranteed());
  for (int i = 0; i < 38; ++i) {
    counter.increment(static_cast<unsigned>(i) % kN);
  }
  const std::uint64_t x = counter.read(0);
  EXPECT_EQ(x, k);  // ReturnValue(0, 0)
  EXPECT_FALSE(within_mult_band(x, 38, k));      // the documented gap
  EXPECT_LE(x, base::sat_mul(38, k));            // upper side still holds
  // Once interval 1 fills, the band is restored and stays restored.
  for (int i = 38; i < 2000; ++i) {
    counter.increment(static_cast<unsigned>(i) % kN);
  }
  const std::uint64_t later = counter.read(0);
  EXPECT_TRUE(within_mult_band(later, 2000, k)) << later;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KMultCounterAccuracy,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 8u, 16u, 25u),
                       ::testing::Values<std::uint64_t>(0, 1, 5),
                       ::testing::Values(1, 10, 1000, 20000)));

// ----------------------------------------------------------------------
// Lemma III.2: switches are set in increasing index order
// ----------------------------------------------------------------------

TEST(KMultCounterInvariants, SwitchesFormAPrefix) {
  constexpr unsigned kN = 4;
  KMultCounter counter(kN, 2);
  sim::Rng rng(1234);
  for (int i = 0; i < 30000; ++i) {
    counter.increment(static_cast<unsigned>(rng.below(kN)));
    if (i % 500 == 0) {
      // Every set switch below the first unset one, nothing set above.
      const std::uint64_t first_unset =
          counter.first_unset_switch_unrecorded();
      for (std::uint64_t j = 0; j < first_unset; ++j) {
        ASSERT_TRUE(counter.switch_set_unrecorded(j)) << j;
      }
      for (std::uint64_t j = first_unset; j < first_unset + 2 * 2 + 2; ++j) {
        ASSERT_FALSE(counter.switch_set_unrecorded(j)) << j;
      }
    }
  }
}

TEST(KMultCounterInvariants, SwitchesFormAPrefixUnderConcurrency) {
  constexpr unsigned kN = 4;
  KMultCounter counter(kN, 2);
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (unsigned pid = 0; pid < kN; ++pid) {
    threads.emplace_back([&, pid] {
      while (!stop.load(std::memory_order_acquire)) counter.increment(pid);
    });
  }
  // Concurrently sample the prefix property. A sampled gap would falsify
  // Lemma III.2. (The two peeks race benignly: switches only ever go up,
  // and we check "set below first-unset", re-reading the boundary.)
  for (int sample = 0; sample < 200; ++sample) {
    const std::uint64_t first_unset = counter.first_unset_switch_unrecorded();
    for (std::uint64_t j = 0; j < first_unset; ++j) {
      ASSERT_TRUE(counter.switch_set_unrecorded(j))
          << "gap below " << first_unset << " at " << j;
    }
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
}

// ----------------------------------------------------------------------
// Lemma III.7 / Lemma III.8: step complexity
// ----------------------------------------------------------------------

TEST(KMultCounterSteps, IncrementWorstCaseIsBounded) {
  // One CounterIncrement performs at most k test&sets + 1 write to H.
  constexpr unsigned kN = 9;
  const std::uint64_t k = 3;
  KMultCounter counter(kN, k);
  for (int i = 0; i < 50000; ++i) {
    const unsigned pid = static_cast<unsigned>(i) % kN;
    const std::uint64_t steps =
        base::steps_of([&] { counter.increment(pid); });
    ASSERT_LE(steps, k + 1) << "at op " << i;
  }
}

TEST(KMultCounterSteps, AmortizedIsConstant) {
  // Theorem III.9: for k ≥ √n the amortized step complexity is O(1).
  // Measure a long increment+read mix and check steps/op stays below a
  // small constant (far below n and log n alike).
  constexpr unsigned kN = 16;
  const std::uint64_t k = 4;  // = √n
  KMultCounter counter(kN, k);
  base::StepRecorder recorder;
  std::uint64_t ops = 0;
  {
    base::ScopedRecording on(recorder);
    sim::Rng rng(77);
    for (int i = 0; i < 200000; ++i) {
      const unsigned pid = static_cast<unsigned>(rng.below(kN));
      if (rng.chance(0.1)) {
        counter.read(pid);
      } else {
        counter.increment(pid);
      }
      ++ops;
    }
  }
  const double amortized =
      static_cast<double>(recorder.total()) / static_cast<double>(ops);
  EXPECT_LT(amortized, 3.0) << "amortized steps/op = " << amortized;
}

TEST(KMultCounterSteps, RepeatReadsAreCheapViaPersistentCursor) {
  // After a read positions last_i, an immediately repeated read with no
  // new switches set costs O(1) steps (the cursor does not rescan).
  KMultCounter counter(4, 2);
  for (int i = 0; i < 1000; ++i) counter.increment(0);
  counter.read(1);  // positions the cursor
  const std::uint64_t steps = base::steps_of([&] { counter.read(1); });
  EXPECT_LE(steps, 2u);
}

// ----------------------------------------------------------------------
// Wait-freedom of reads (helping mechanism, lines 45–55)
// ----------------------------------------------------------------------

TEST(KMultCounterHelping, ReadsCompleteUnderContinuousIncrements) {
  // Incrementers run flat out while a reader performs reads; every read
  // must return (wait-freedom via helping) with a sane (banded) value
  // against the concurrent window.
  constexpr unsigned kN = 4;
  KMultCounter counter(kN, 2);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> started{0};
  std::atomic<std::uint64_t> finished{0};
  std::vector<std::thread> incrementers;
  for (unsigned pid = 0; pid + 1 < kN; ++pid) {
    incrementers.emplace_back([&, pid] {
      while (!stop.load(std::memory_order_acquire)) {
        started.fetch_add(1, std::memory_order_relaxed);
        counter.increment(pid);
        finished.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t before = finished.load(std::memory_order_relaxed);
    const std::uint64_t x = counter.read(kN - 1);
    const std::uint64_t after = started.load(std::memory_order_relaxed);
    // Exact count at the linearization point lies in [before, after].
    // Skip the band assertion inside the bootstrap transient (see
    // KMultCounterDeviation): it is guaranteed only past 1 + n(k−1).
    if (before <= 1 + kN * (counter.k() - 1)) continue;
    const std::uint64_t v_lo = core::mult_band_v_min(x, counter.k());
    const std::uint64_t v_hi = core::mult_band_v_max(x, counter.k());
    ASSERT_LE(v_lo, after) << "read " << x << " too large for window";
    ASSERT_GE(v_hi, before) << "read " << x << " too small for window";
  }
  stop.store(true, std::memory_order_release);
  for (auto& thread : incrementers) thread.join();
}

// ----------------------------------------------------------------------
// Linearizability under concurrency (Lemma III.5) — checker-verified
// ----------------------------------------------------------------------

class KMultCounterConcurrent
    : public ::testing::TestWithParam<std::tuple<unsigned, std::uint64_t>> {};

TEST_P(KMultCounterConcurrent, HistoryPassesKMultChecker) {
  const auto [n, seed] = GetParam();
  const std::uint64_t k = std::max<std::uint64_t>(2, base::ceil_sqrt(n));
  KMultCounter counter(n, k);
  sim::HistoryRecorder history(n);
  // Warm past the bootstrap transient (see KMultCounterDeviation): the
  // checker verifies the paper's band, which Algorithm 1 only guarantees
  // once the early intervals have filled. The warmup increments are
  // recorded so the checker sees the complete history.
  for (std::uint64_t i = 0; i < (1 + n * (k - 1)) * 4 + 4 * k * k; ++i) {
    const auto pid = static_cast<unsigned>(i % n);
    history.record_increment(pid, [&] { counter.increment(pid); });
  }
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (unsigned pid = 0; pid < n; ++pid) {
    threads.emplace_back([&, pid] {
      sim::Rng rng(seed * 131 + pid);
      while (!go.load(std::memory_order_acquire)) {}
      for (int i = 0; i < 4000; ++i) {
        if (rng.chance(0.15)) {
          history.record_read(pid, [&] { return counter.read(pid); });
        } else {
          history.record_increment(pid, [&] { counter.increment(pid); });
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();

  const auto result = sim::check_counter_history(history.merged(), k);
  EXPECT_TRUE(result.ok) << result.violation;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KMultCounterConcurrent,
    ::testing::Combine(::testing::Values(2u, 4u, 8u),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

// ----------------------------------------------------------------------
// Misc / construction
// ----------------------------------------------------------------------

TEST(KMultCounterMisc, AccuracyGuaranteeFlag) {
  EXPECT_TRUE(KMultCounter(4, 2).accuracy_guaranteed());    // √4 = 2
  EXPECT_TRUE(KMultCounter(16, 4).accuracy_guaranteed());   // √16 = 4
  EXPECT_TRUE(KMultCounter(16, 9).accuracy_guaranteed());
  EXPECT_FALSE(KMultCounter(16, 3).accuracy_guaranteed());  // 3 < 4
  EXPECT_FALSE(KMultCounter(100, 2).accuracy_guaranteed());
}

TEST(KMultCounterMisc, Accessors) {
  KMultCounter counter(7, 3);
  EXPECT_EQ(counter.num_processes(), 7u);
  EXPECT_EQ(counter.k(), 3u);
}

TEST(KMultCounterMisc, ReadersOnlyNeverSetSwitches) {
  KMultCounter counter(3, 2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(counter.read(static_cast<unsigned>(i) % 3), 0u);
  }
  EXPECT_EQ(counter.first_unset_switch_unrecorded(), 0u);
}

}  // namespace
}  // namespace approx::core
