// Unit tests for the approximation-band predicates (core/approx.hpp) —
// the single source of truth for the paper's accuracy contracts, used by
// implementations, checkers and tests alike.
#include "core/approx.hpp"

#include <gtest/gtest.h>

#include "base/kmath.hpp"

namespace approx::core {
namespace {

TEST(MultBand, ZeroExactValueRequiresZero) {
  EXPECT_TRUE(within_mult_band(0, 0, 2));
  EXPECT_FALSE(within_mult_band(1, 0, 2));
  EXPECT_FALSE(within_mult_band(1, 0, 1000000));
}

TEST(MultBand, ZeroReadInvalidForPositiveValue) {
  EXPECT_FALSE(within_mult_band(0, 1, 2));
  EXPECT_FALSE(within_mult_band(0, 1, base::kU64Max));
}

TEST(MultBand, ExactIsAlwaysValid) {
  for (std::uint64_t v : {1u, 2u, 17u, 1000000u}) {
    for (std::uint64_t k : {1u, 2u, 5u}) {
      EXPECT_TRUE(within_mult_band(v, v, k)) << v << " " << k;
    }
  }
}

TEST(MultBand, KOneIsExactEquality) {
  EXPECT_TRUE(within_mult_band(5, 5, 1));
  EXPECT_FALSE(within_mult_band(4, 5, 1));
  EXPECT_FALSE(within_mult_band(6, 5, 1));
}

TEST(MultBand, BoundariesInclusive) {
  // v = 12, k = 3: valid x ∈ [4, 36].
  EXPECT_TRUE(within_mult_band(4, 12, 3));
  EXPECT_TRUE(within_mult_band(36, 12, 3));
  EXPECT_FALSE(within_mult_band(3, 12, 3));
  EXPECT_FALSE(within_mult_band(37, 12, 3));
}

TEST(MultBand, RationalLowerBoundNotIntegerTruncated) {
  // v = 10, k = 3: v/k = 3.33…, so x = 3 is INVALID even though
  // 10/3 = 3 in integer division. The predicate must use x·k ≥ v.
  EXPECT_FALSE(within_mult_band(3, 10, 3));
  EXPECT_TRUE(within_mult_band(4, 10, 3));
}

TEST(MultBand, NearOverflowSaturationErrsTowardAcceptance) {
  // Saturation only widens the band at the extreme top of the domain.
  EXPECT_TRUE(within_mult_band(base::kU64Max, base::kU64Max, 2));
  // ⌊max/2⌋·2 = max−1 < max: genuinely below v/k (the band is rational,
  // not integer-truncated) — must be rejected even near the domain top.
  EXPECT_FALSE(within_mult_band(base::kU64Max / 2, base::kU64Max, 2));
  // The true lower edge ⌈max/2⌉ is accepted.
  EXPECT_TRUE(
      within_mult_band(base::kU64Max / 2 + 1, base::kU64Max, 2));
}

TEST(MultBandWindow, VMinIsCeilDivision) {
  EXPECT_EQ(mult_band_v_min(10, 3), 4u);   // ⌈10/3⌉
  EXPECT_EQ(mult_band_v_min(9, 3), 3u);
  EXPECT_EQ(mult_band_v_min(0, 3), 0u);
  EXPECT_EQ(mult_band_v_min(base::kU64Max, 2), base::kU64Max / 2 + 1);
}

TEST(MultBandWindow, VMaxSaturates) {
  EXPECT_EQ(mult_band_v_max(10, 3), 30u);
  EXPECT_EQ(mult_band_v_max(base::kU64Max, 2), base::kU64Max);
}

TEST(MultBandWindow, WindowConsistentWithPredicate) {
  // x is valid for v iff v ∈ [v_min(x), v_max(x)] — cross-check on a grid.
  for (std::uint64_t k : {2u, 3u, 7u}) {
    for (std::uint64_t x = 0; x <= 60; ++x) {
      for (std::uint64_t v = 0; v <= 60; ++v) {
        const bool by_predicate = within_mult_band(x, v, k);
        const bool by_window =
            v >= mult_band_v_min(x, k) && v <= mult_band_v_max(x, k) &&
            (v != 0 || x == 0) && (x != 0 || v == 0);
        EXPECT_EQ(by_predicate, by_window)
            << "x=" << x << " v=" << v << " k=" << k;
      }
    }
  }
}

TEST(AddBand, Basics) {
  EXPECT_TRUE(within_add_band(5, 5, 0));
  EXPECT_FALSE(within_add_band(4, 5, 0));
  EXPECT_TRUE(within_add_band(3, 5, 2));
  EXPECT_TRUE(within_add_band(7, 5, 2));
  EXPECT_FALSE(within_add_band(2, 5, 2));
  EXPECT_FALSE(within_add_band(8, 5, 2));
}

TEST(AddBand, ZeroCases) {
  EXPECT_TRUE(within_add_band(0, 0, 0));
  EXPECT_TRUE(within_add_band(0, 3, 3));
  EXPECT_FALSE(within_add_band(0, 4, 3));
  EXPECT_TRUE(within_add_band(3, 0, 3));
}

TEST(AddBand, SaturationAtDomainTop) {
  EXPECT_TRUE(within_add_band(base::kU64Max, base::kU64Max, 1));
  EXPECT_TRUE(within_add_band(base::kU64Max - 1, base::kU64Max, 1));
  EXPECT_FALSE(within_add_band(base::kU64Max - 2, base::kU64Max, 1));
}

}  // namespace
}  // namespace approx::core
