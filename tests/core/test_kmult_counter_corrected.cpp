// Tests for the corrected k-multiplicative counter variant, which must
// satisfy the band in *every* phase (including the bootstrap transient
// where the paper-faithful Algorithm 1 does not — see
// KMultCounterDeviation in test_kmult_counter.cpp).
#include "core/kmult_counter_corrected.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

#include "base/kmath.hpp"
#include "base/step_recorder.hpp"
#include "core/approx.hpp"
#include "sim/history.hpp"
#include "sim/lin_check.hpp"
#include "sim/workload.hpp"

namespace approx::core {
namespace {

TEST(CorrectedCounter, ZeroBeforeAnyIncrement) {
  KMultCounterCorrected counter(4, 2);
  EXPECT_EQ(counter.read(0), 0u);
}

TEST(CorrectedCounter, ValueAtPositionFormula) {
  // k = 2: singles at 0,1,2 announce 1 each; I_1 = [3,4] announces 2 per
  // switch; I_2 = [5,6] announces 4 per switch.
  KMultCounterCorrected counter(4, 2);
  EXPECT_EQ(counter.value_at_position(0), 2u);        // 2·1
  EXPECT_EQ(counter.value_at_position(1), 4u);        // 2·2
  EXPECT_EQ(counter.value_at_position(2), 6u);        // 2·3
  EXPECT_EQ(counter.value_at_position(3), 10u);       // 2·(3 + 2)
  EXPECT_EQ(counter.value_at_position(4), 14u);       // 2·(3 + 4)
  EXPECT_EQ(counter.value_at_position(5), 22u);       // 2·(3 + 4 + 4)
  EXPECT_EQ(counter.value_at_position(6), 30u);       // 2·(3 + 4 + 8)
}

TEST(CorrectedCounter, ValueAtPositionMonotone) {
  KMultCounterCorrected counter(4, 3);
  std::uint64_t previous = 0;
  // Scan positions: 0..k dense, then first/last of each interval.
  std::uint64_t pos = 0;
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t value = counter.value_at_position(pos);
    ASSERT_GE(value, previous) << "pos=" << pos;
    previous = value;
    if (pos < 3) {
      pos += 1;
    } else if (pos == 3) {
      pos = 4;
    } else if (pos % 3 == 0) {
      pos += 1;
    } else {
      pos += 2;
    }
  }
}

// THE fix: the exact scenario that breaks the faithful variant must pass
// here — n = 25, k = 5 = √n, 38 round-robin increments.
TEST(CorrectedCounter, BootstrapScenarioFromThePaperGapIsBanded) {
  constexpr unsigned kN = 25;
  const std::uint64_t k = 5;
  KMultCounterCorrected counter(kN, k);
  for (int i = 0; i < 38; ++i) {
    counter.increment(static_cast<unsigned>(i) % kN);
    const auto v = static_cast<std::uint64_t>(i + 1);
    const std::uint64_t x = counter.read(0);
    ASSERT_TRUE(within_mult_band(x, v, k)) << "v=" << v << " x=" << x;
  }
}

TEST(CorrectedCounter, SingleProcessEveryPrefixBanded) {
  KMultCounterCorrected counter(1, 2);
  for (std::uint64_t v = 1; v <= 5000; ++v) {
    counter.increment(0);
    const std::uint64_t x = counter.read(0);
    ASSERT_TRUE(within_mult_band(x, v, 2)) << "v=" << v << " x=" << x;
  }
}

// Unconditional band over the (n, k, total) grid — no bootstrap carve-out.
class CorrectedCounterAccuracy
    : public ::testing::TestWithParam<std::tuple<unsigned, std::uint64_t, int>> {
};

TEST_P(CorrectedCounterAccuracy, EveryPrefixBanded) {
  const auto [n, k_extra, total] = GetParam();
  const std::uint64_t k =
      std::max<std::uint64_t>(2, base::ceil_sqrt(n) + k_extra);
  KMultCounterCorrected counter(n, k);
  ASSERT_TRUE(counter.accuracy_guaranteed());
  for (int i = 0; i < total; ++i) {
    counter.increment(static_cast<unsigned>(i) % n);
    if (i % 13 == 0) {
      const auto v = static_cast<std::uint64_t>(i + 1);
      const std::uint64_t x = counter.read((static_cast<unsigned>(i) + 1) % n);
      ASSERT_TRUE(within_mult_band(x, v, k))
          << "n=" << n << " k=" << k << " v=" << v << " x=" << x;
    }
  }
  const auto v = static_cast<std::uint64_t>(total);
  for (unsigned pid = 0; pid < n; ++pid) {
    const std::uint64_t x = counter.read(pid);
    ASSERT_TRUE(within_mult_band(x, v, k))
        << "n=" << n << " k=" << k << " v=" << v << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CorrectedCounterAccuracy,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 8u, 16u, 25u, 36u),
                       ::testing::Values<std::uint64_t>(0, 1, 5),
                       ::testing::Values(1, 10, 1000, 20000)));

TEST(CorrectedCounterInvariants, SwitchesFormAPrefix) {
  constexpr unsigned kN = 4;
  KMultCounterCorrected counter(kN, 2);
  sim::Rng rng(4321);
  for (int i = 0; i < 30000; ++i) {
    counter.increment(static_cast<unsigned>(rng.below(kN)));
    if (i % 500 == 0) {
      const std::uint64_t first_unset =
          counter.first_unset_switch_unrecorded();
      for (std::uint64_t j = 0; j < first_unset; ++j) {
        ASSERT_TRUE(counter.switch_set_unrecorded(j)) << j;
      }
      ASSERT_FALSE(counter.switch_set_unrecorded(first_unset + 1));
    }
  }
}

TEST(CorrectedCounterSteps, IncrementWorstCaseIsBounded) {
  // One increment performs at most k+1 test&sets + 1 write to H.
  constexpr unsigned kN = 9;
  const std::uint64_t k = 3;
  KMultCounterCorrected counter(kN, k);
  for (int i = 0; i < 50000; ++i) {
    const unsigned pid = static_cast<unsigned>(i) % kN;
    const std::uint64_t steps =
        base::steps_of([&] { counter.increment(pid); });
    ASSERT_LE(steps, k + 2) << "at op " << i;
  }
}

TEST(CorrectedCounterSteps, AmortizedIsConstantPastBootstrap) {
  constexpr unsigned kN = 16;
  const std::uint64_t k = 4;
  KMultCounterCorrected counter(kN, k);
  base::StepRecorder recorder;
  std::uint64_t ops = 0;
  {
    base::ScopedRecording on(recorder);
    sim::Rng rng(78);
    for (int i = 0; i < 200000; ++i) {
      const unsigned pid = static_cast<unsigned>(rng.below(kN));
      if (rng.chance(0.1)) {
        counter.read(pid);
      } else {
        counter.increment(pid);
      }
      ++ops;
    }
  }
  const double amortized =
      static_cast<double>(recorder.total()) / static_cast<double>(ops);
  EXPECT_LT(amortized, 3.0) << "amortized steps/op = " << amortized;
}

TEST(CorrectedCounterHelping, ReadsCompleteUnderContinuousIncrements) {
  constexpr unsigned kN = 4;
  KMultCounterCorrected counter(kN, 2);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> started{0};
  std::atomic<std::uint64_t> finished{0};
  std::vector<std::thread> incrementers;
  for (unsigned pid = 0; pid + 1 < kN; ++pid) {
    incrementers.emplace_back([&, pid] {
      while (!stop.load(std::memory_order_acquire)) {
        started.fetch_add(1, std::memory_order_relaxed);
        counter.increment(pid);
        finished.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // No bootstrap carve-out: the corrected band holds from the start.
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t before = finished.load(std::memory_order_relaxed);
    const std::uint64_t x = counter.read(kN - 1);
    const std::uint64_t after = started.load(std::memory_order_relaxed);
    const std::uint64_t v_lo = core::mult_band_v_min(x, counter.k());
    const std::uint64_t v_hi = core::mult_band_v_max(x, counter.k());
    ASSERT_LE(v_lo, after) << "read " << x << " too large for window";
    ASSERT_GE(v_hi, before) << "read " << x << " too small for window";
  }
  stop.store(true, std::memory_order_release);
  for (auto& thread : incrementers) thread.join();
}

class CorrectedCounterConcurrent
    : public ::testing::TestWithParam<std::tuple<unsigned, std::uint64_t>> {};

TEST_P(CorrectedCounterConcurrent, HistoryPassesKMultChecker) {
  const auto [n, seed] = GetParam();
  const std::uint64_t k = std::max<std::uint64_t>(2, base::ceil_sqrt(n));
  KMultCounterCorrected counter(n, k);
  sim::HistoryRecorder history(n);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (unsigned pid = 0; pid < n; ++pid) {
    threads.emplace_back([&, pid] {
      sim::Rng rng(seed * 173 + pid);
      while (!go.load(std::memory_order_acquire)) {}
      for (int i = 0; i < 4000; ++i) {
        if (rng.chance(0.15)) {
          history.record_read(pid, [&] { return counter.read(pid); });
        } else {
          history.record_increment(pid, [&] { counter.increment(pid); });
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();

  const auto result = sim::check_counter_history(history.merged(), k);
  EXPECT_TRUE(result.ok) << result.violation;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CorrectedCounterConcurrent,
    ::testing::Combine(::testing::Values(2u, 4u, 8u),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(CorrectedCounterMisc, AccessorsAndGuarantee) {
  KMultCounterCorrected counter(9, 3);
  EXPECT_EQ(counter.num_processes(), 9u);
  EXPECT_EQ(counter.k(), 3u);
  EXPECT_TRUE(counter.accuracy_guaranteed());
  EXPECT_FALSE(KMultCounterCorrected(100, 3).accuracy_guaranteed());
}

}  // namespace
}  // namespace approx::core
