// Tests for the k-additive-accurate counter extension (E11 substrate).
#include "core/kadditive_counter.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

#include "base/step_recorder.hpp"
#include "core/approx.hpp"
#include "sim/workload.hpp"

namespace approx::core {
namespace {

TEST(KAdditiveCounter, InitiallyZero) {
  KAdditiveCounter counter(4, 16);
  EXPECT_EQ(counter.read(), 0u);
}

TEST(KAdditiveCounter, NeverOvercounts) {
  KAdditiveCounter counter(2, 10);
  for (int i = 0; i < 1000; ++i) {
    counter.increment(static_cast<unsigned>(i) % 2);
    const std::uint64_t x = counter.read();
    const auto v = static_cast<std::uint64_t>(i + 1);
    ASSERT_LE(x, v);
  }
}

TEST(KAdditiveCounter, UndercountsByAtMostK) {
  for (std::uint64_t k : {0u, 1u, 7u, 64u, 1000u}) {
    constexpr unsigned kN = 4;
    KAdditiveCounter counter(kN, k);
    std::uint64_t v = 0;
    sim::Rng rng(k + 1);
    for (int i = 0; i < 5000; ++i) {
      counter.increment(static_cast<unsigned>(rng.below(kN)));
      ++v;
      const std::uint64_t x = counter.read();
      ASSERT_TRUE(within_add_band(x, v, k))
          << "k=" << k << " v=" << v << " x=" << x;
      ASSERT_LE(x, v);  // one-sided: never overcounts
    }
  }
}

TEST(KAdditiveCounter, KZeroIsExact) {
  KAdditiveCounter counter(3, 0);
  EXPECT_EQ(counter.flush_threshold(), 1u);
  for (int i = 0; i < 300; ++i) {
    counter.increment(static_cast<unsigned>(i) % 3);
    ASSERT_EQ(counter.read(), static_cast<std::uint64_t>(i + 1));
  }
}

TEST(KAdditiveCounter, FlushMakesPendingVisible) {
  KAdditiveCounter counter(2, 100);  // flush threshold 51
  for (int i = 0; i < 10; ++i) counter.increment(0);
  EXPECT_LT(counter.read(), 10u);  // still buffered
  counter.flush(0);
  EXPECT_EQ(counter.read(), 10u);
  counter.flush(1);  // flushing an idle pid is a no-op
  EXPECT_EQ(counter.read(), 10u);
}

TEST(KAdditiveCounter, FlushThresholdFormula) {
  EXPECT_EQ(KAdditiveCounter(4, 100).flush_threshold(), 26u);  // 100/4+1
  EXPECT_EQ(KAdditiveCounter(4, 3).flush_threshold(), 1u);     // k < n ⇒ exact
  EXPECT_EQ(KAdditiveCounter(1, 5).flush_threshold(), 6u);
}

TEST(KAdditiveCounter, AmortizedSharedStepsShrinkWithK) {
  // Increments cost ~n/k shared writes amortized: with k = 1000 and
  // n = 4, 10000 increments by one process should cost ≈ 10000/251 ≈ 40
  // writes.
  KAdditiveCounter counter(4, 1000);
  base::StepRecorder recorder;
  {
    base::ScopedRecording on(recorder);
    for (int i = 0; i < 10000; ++i) counter.increment(0);
  }
  EXPECT_LE(recorder.writes(), 41u);
  EXPECT_GE(recorder.writes(), 39u);
  EXPECT_EQ(recorder.reads(), 0u);
}

TEST(KAdditiveCounter, ConcurrentBandAgainstWindow) {
  constexpr unsigned kN = 4;
  const std::uint64_t k = 64;
  KAdditiveCounter counter(kN, k);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> started{0};
  std::atomic<std::uint64_t> finished{0};
  std::vector<std::thread> incrementers;
  for (unsigned pid = 0; pid + 1 < kN; ++pid) {
    incrementers.emplace_back([&, pid] {
      while (!stop.load(std::memory_order_acquire)) {
        started.fetch_add(1, std::memory_order_relaxed);
        counter.increment(pid);
        finished.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t before = finished.load(std::memory_order_relaxed);
    const std::uint64_t x = counter.read();
    const std::uint64_t after = started.load(std::memory_order_relaxed);
    // Some v in [before, after] must satisfy v−k ≤ x ≤ v.
    ASSERT_LE(x, after) << "overcounted";
    ASSERT_GE(x + k, before) << "undercounted beyond k";
  }
  stop.store(true, std::memory_order_release);
  for (auto& thread : incrementers) thread.join();
}

// Property sweep: (n, k) grid; final flushed value is exact.
class KAdditiveSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, std::uint64_t>> {};

TEST_P(KAdditiveSweep, FlushedQuiescentValueIsExact) {
  const auto [n, k] = GetParam();
  KAdditiveCounter counter(n, k);
  sim::Rng rng(n * 13 + k);
  const int total = 2000;
  for (int i = 0; i < total; ++i) {
    counter.increment(static_cast<unsigned>(rng.below(n)));
  }
  for (unsigned pid = 0; pid < n; ++pid) counter.flush(pid);
  EXPECT_EQ(counter.read(), static_cast<std::uint64_t>(total));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KAdditiveSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 5u, 16u),
                       ::testing::Values<std::uint64_t>(0, 1, 10, 500)));

}  // namespace
}  // namespace approx::core
