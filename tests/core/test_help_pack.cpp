// Unit tests for the helping-pair packing (core/help_pack.hpp), exercising
// the field boundaries the seed's 40/24 split silently wrapped at.
#include <gtest/gtest.h>

#include <cstdint>

#include "base/kmath.hpp"
#include "core/help_pack.hpp"
#include "core/kmult_counter.hpp"
#include "core/kmult_counter_corrected.hpp"

namespace approx::core {
namespace {

TEST(HelpPackTest, RoundTripSmallValues) {
  for (std::uint64_t position : {0ull, 1ull, 5ull, 1024ull}) {
    for (std::uint64_t sn : {0ull, 1ull, 2ull, 999ull}) {
      const std::uint64_t packed = pack_help(position, sn);
      EXPECT_EQ(unpack_help_position(packed), position);
      EXPECT_EQ(unpack_help_sn(packed), sn);
    }
  }
}

TEST(HelpPackTest, RoundTripAtFieldBoundaries) {
  // The seed's packing lost sequence-number bits above 2^24; the widened
  // split must round-trip the full 32-bit range of both fields.
  const std::uint64_t old_sn_limit = (std::uint64_t{1} << 24) - 1;
  for (const std::uint64_t sn :
       {old_sn_limit, old_sn_limit + 1, old_sn_limit + 2, kHelpSnMax - 1,
        kHelpSnMax}) {
    const std::uint64_t packed = pack_help(7, sn);
    EXPECT_EQ(unpack_help_sn(packed), sn) << "sn = " << sn;
    EXPECT_EQ(unpack_help_position(packed), 7u);
  }
  for (const std::uint64_t position :
       {old_sn_limit, kHelpPositionMax - 1, kHelpPositionMax}) {
    const std::uint64_t packed = pack_help(position, 3);
    EXPECT_EQ(unpack_help_position(packed), position);
    EXPECT_EQ(unpack_help_sn(packed), 3u);
  }
}

TEST(HelpPackTest, SequenceNumbersDoNotWrapAcrossTheOldBoundary) {
  // Regression for the silent 24-bit wraparound: sn = 2^24 must compare
  // greater than sn = 2^24 - 1 after a pack/unpack cycle (the helping
  // scan's `sn >= baseline + 2` freshness test relies on this).
  const std::uint64_t before = unpack_help_sn(pack_help(0, (1u << 24) - 1));
  const std::uint64_t after = unpack_help_sn(pack_help(0, (1u << 24) + 1));
  EXPECT_GT(after, before);
  EXPECT_GE(after, before + 2);
}

TEST(HelpPackTest, FeasibleExecutionsFitTheFields) {
  // The packing guard's premise: for every supported k, the largest
  // switch index any execution of < 2^64 increments can reach — singles
  // (k+1) plus one k-switch interval per power of k up to 2^64 — fits
  // the position field, and so does the per-process win count.
  for (const std::uint64_t k :
       {std::uint64_t{2}, std::uint64_t{16}, std::uint64_t{1} << 12,
        kMaxSupportedK}) {
    const std::uint64_t intervals = base::floor_log_k(k, base::kU64Max) + 1;
    const std::uint64_t max_index =
        base::sat_add(k + 1, base::sat_mul(k, intervals));
    EXPECT_LE(max_index, kHelpPositionMax) << "k = " << k;
    EXPECT_LE(max_index, kHelpSnMax) << "k = " << k;
  }
}

TEST(HelpPackTest, ConstructorsRejectUnsupportedKInEveryBuildMode) {
  // The packing guarantee is enforced by an unconditional throw, not an
  // assert: release builds (the default, NDEBUG) must reject too.
  EXPECT_THROW(KMultCounter(2, kMaxSupportedK + 1), std::invalid_argument);
  EXPECT_THROW(KMultCounterCorrected(2, kMaxSupportedK + 1),
               std::invalid_argument);
  EXPECT_NO_THROW(KMultCounter(2, kMaxSupportedK));
}

TEST(HelpPackTest, CountersAnnounceThroughThePackedPairs) {
  // End-to-end sanity: announces survive pack/unpack inside both counter
  // variants (read returns a value derived from an unpacked position).
  KMultCounter faithful(2, 2);
  KMultCounterCorrected corrected(2, 2);
  for (int i = 0; i < 1000; ++i) {
    faithful.increment(i % 2);
    corrected.increment(i % 2);
  }
  EXPECT_GT(faithful.read(0), 0u);
  EXPECT_GT(corrected.read(0), 0u);
}

}  // namespace
}  // namespace approx::core
