// Tests for the m-bounded k-multiplicative counter (the object of
// Theorem V.4 / Lemma V.3, with the read matching the lower bound up to
// an additive log₂ k).
#include "core/kmult_bounded_counter.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "base/kmath.hpp"
#include "base/step_recorder.hpp"
#include "core/approx.hpp"

namespace approx::core {
namespace {

TEST(BoundedCounter, ZeroBeforeAnyIncrement) {
  KMultBoundedCounter counter(4, 2, 1000);
  EXPECT_EQ(counter.read(0), 0u);
  EXPECT_EQ(counter.read_amortized(0), 0u);
}

TEST(BoundedCounter, Accessors) {
  KMultBoundedCounter counter(9, 3, 1 << 20);
  EXPECT_EQ(counter.num_processes(), 9u);
  EXPECT_EQ(counter.k(), 3u);
  EXPECT_EQ(counter.m(), std::uint64_t{1} << 20);
  EXPECT_TRUE(counter.accuracy_guaranteed());
}

TEST(BoundedCounter, MaxSwitchIndexFormula) {
  // k = 2, m = 1024: singles 0..2 plus intervals for each power of 2 up
  // to 2^10 ⇒ index ≤ 3 + 2·11 = 25.
  KMultBoundedCounter counter(4, 2, 1024);
  EXPECT_EQ(counter.max_switch_index(), 3u + 2 * 11);
}

class BoundedCounterSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, std::uint64_t>> {};

TEST_P(BoundedCounterSweep, EveryPrefixBandedUpToM) {
  const auto [n, k] = GetParam();
  const std::uint64_t m = 20'000;
  KMultBoundedCounter counter(n, k, m);
  if (!counter.accuracy_guaranteed()) GTEST_SKIP();
  for (std::uint64_t v = 1; v <= m; ++v) {
    counter.increment(static_cast<unsigned>(v % n));
    if (v % 23 == 0 || v < 50) {
      const std::uint64_t x = counter.read(static_cast<unsigned>(v % n));
      ASSERT_TRUE(within_mult_band(x, v, k))
          << "n=" << n << " k=" << k << " v=" << v << " x=" << x;
      const std::uint64_t xa =
          counter.read_amortized(static_cast<unsigned>(v % n));
      ASSERT_TRUE(within_mult_band(xa, v, k))
          << "n=" << n << " k=" << k << " v=" << v << " xa=" << xa;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BoundedCounterSweep,
    ::testing::Combine(::testing::Values(1u, 4u, 9u),
                       ::testing::Values<std::uint64_t>(2, 3, 4, 8)));

TEST(BoundedCounter, ReadWorstCaseIsDoublyLogarithmicInM) {
  // Theorem V.4's regime: after all m increments, the read must cost
  // O(log₂ k + log₂ log_k m) steps, NOT Θ(log_k m).
  for (const std::uint64_t m : {std::uint64_t{1} << 10, std::uint64_t{1} << 16,
                                std::uint64_t{1} << 22}) {
    constexpr unsigned kN = 4;
    const std::uint64_t k = 2;
    KMultBoundedCounter counter(kN, k, m);
    for (std::uint64_t i = 0; i < m; ++i) {
      counter.increment(static_cast<unsigned>(i % kN));
    }
    const std::uint64_t bound =
        2 * base::ceil_log2(counter.max_switch_index()) + 5;
    const std::uint64_t steps =
        base::steps_of([&] { (void)counter.read(0); });
    EXPECT_LE(steps, bound) << "m=" << m;
  }
}

TEST(BoundedCounter, SaturatedReadStillBanded) {
  constexpr unsigned kN = 2;
  const std::uint64_t k = 2;
  const std::uint64_t m = 5'000;
  KMultBoundedCounter counter(kN, k, m);
  for (std::uint64_t i = 0; i < m; ++i) {
    counter.increment(static_cast<unsigned>(i % kN));
  }
  EXPECT_TRUE(within_mult_band(counter.read(0), m, k));
  EXPECT_TRUE(within_mult_band(counter.read(1), m, k));
}

}  // namespace
}  // namespace approx::core
