// Tests for the helping mechanism (paper lines 45–55) — the component
// that makes CounterRead wait-free. Natural thread scheduling almost
// never engages it (E13 measures this), so these tests drive the
// documented adversarial schedule deterministically with StepScheduler.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "core/approx.hpp"
#include "core/kmult_counter.hpp"
#include "core/kmult_counter_corrected.hpp"
#include "sim/stepper.hpp"
#include "sim/workload.hpp"

namespace approx::core {
namespace {

TEST(Helping, SequentialReadsNeverHelp) {
  KMultCounter counter(4, 2);
  for (int i = 0; i < 5000; ++i) {
    counter.increment(static_cast<unsigned>(i) % 4);
    (void)counter.read(3);
  }
  for (unsigned pid = 0; pid < 4; ++pid) {
    EXPECT_EQ(counter.reads_via_helping(pid), 0u) << pid;
  }
}

// The adversary the helping mechanism defends against: the reader gets
// one step per `period` steps; otherwise the LOWEST-numbered runnable
// writer runs. Concentrating steps on one writer makes that writer's
// announce sequence number advance repeatedly while the reader's read is
// in flight — exactly the sn−help ≥ 2 witness of paper line 52.
sim::SchedulePicker biased_picker(unsigned reader, unsigned period) {
  auto grants = std::make_shared<std::uint64_t>(0);
  return [grants, reader,
          period](const std::vector<unsigned>& runnable) -> unsigned {
    *grants += 1;
    bool reader_runnable = false;
    unsigned lowest_writer = reader;
    for (unsigned pid : runnable) {
      if (pid == reader) {
        reader_runnable = true;
      } else if (lowest_writer == reader || pid < lowest_writer) {
        lowest_writer = pid;
      }
    }
    if (reader_runnable &&
        (lowest_writer == reader || *grants % period == 0)) {
      return reader;
    }
    return lowest_writer;
  };
}

TEST(Helping, EngagesUnderReaderStarvedSchedule) {
  // Deterministic: same seed, same programs ⇒ same interleaving. The
  // reader is granted 1 of every 8 steps while writer 0 floods; its
  // reads chase the switch frontier and must eventually return through
  // the helping array. Values must stay inside the band of the
  // [completed-at-invoke, started-at-response] window regardless.
  constexpr unsigned kN = 4;
  const std::uint64_t k = 2;
  KMultCounter counter(kN, k);
  bool any_read_done = false;
  std::vector<std::function<void()>> programs;
  for (unsigned pid = 0; pid + 1 < kN; ++pid) {
    programs.emplace_back([&, pid] {
      for (int i = 0; i < 4000; ++i) counter.increment(pid);
    });
  }
  programs.emplace_back([&] {
    for (int i = 0; i < 30; ++i) {
      (void)counter.read(kN - 1);
      any_read_done = true;
    }
  });
  sim::StepScheduler::run(std::move(programs),
                          biased_picker(kN - 1, 8));
  EXPECT_TRUE(any_read_done);
  EXPECT_GE(counter.reads_via_helping(kN - 1), 1u)
      << "the biased schedule never drove a read through the helping "
         "path — the adversarial scenario needs retuning";
}

TEST(Helping, CorrectedVariantEngagesToo) {
  constexpr unsigned kN = 4;
  const std::uint64_t k = 2;
  KMultCounterCorrected counter(kN, k);
  std::vector<std::function<void()>> programs;
  for (unsigned pid = 0; pid + 1 < kN; ++pid) {
    programs.emplace_back([&, pid] {
      for (int i = 0; i < 4000; ++i) counter.increment(pid);
    });
  }
  std::vector<std::uint64_t> reads;
  programs.emplace_back([&] {
    for (int i = 0; i < 30; ++i) reads.push_back(counter.read(kN - 1));
  });
  sim::StepScheduler::run(std::move(programs),
                          biased_picker(kN - 1, 8));
  EXPECT_GE(counter.reads_via_helping(kN - 1), 1u);
  // All reads happened inside the increment flood: every value must be
  // within the band of [0, 12000].
  for (const std::uint64_t x : reads) {
    EXPECT_LE(core::mult_band_v_min(x, k), 12000u) << x;
  }
  // Successive reads may dip when a helping return decoded an interior
  // switch position, but never by more than the band allows: with
  // v₂ ≥ v₁ (counts only grow), x₂ ≥ v₂/k ≥ v₁/k ≥ x₁/k².
  for (std::size_t i = 1; i < reads.size(); ++i) {
    EXPECT_GE(base::sat_mul(reads[i], k * k), reads[i - 1]) << i;
  }
}

}  // namespace
}  // namespace approx::core
