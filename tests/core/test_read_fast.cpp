// Tests for the binary-search read extension (KMultCounterCorrected::
// read_fast) — the engineering answer to the paper's §VI open question
// on worst-case bounded-counter reads.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "base/kmath.hpp"
#include "base/step_recorder.hpp"
#include "core/approx.hpp"
#include "core/kmult_counter_corrected.hpp"
#include "sim/history.hpp"
#include "sim/lin_check.hpp"
#include "sim/stepper.hpp"
#include "sim/workload.hpp"

namespace approx::core {
namespace {

TEST(ReadFast, ZeroBeforeAnyIncrement) {
  KMultCounterCorrected counter(4, 2);
  EXPECT_EQ(counter.read_fast(0), 0u);
}

TEST(ReadFast, AgreesWithLinearReadAtQuiescence) {
  // At quiescence read_fast decodes the exact prefix boundary, which is
  // at least as precise as the linear read's first/last-of-interval stop;
  // both must be within the band and read_fast must never be below
  // the linear value (it decodes a switch ≥ the linear stop position).
  KMultCounterCorrected counter(4, 2);
  for (std::uint64_t v = 1; v <= 4000; ++v) {
    counter.increment(static_cast<unsigned>(v % 4));
    if (v % 7 == 0) {
      const std::uint64_t fast = counter.read_fast(0);
      const std::uint64_t linear = counter.read(1);
      ASSERT_TRUE(within_mult_band(fast, v, 2)) << "v=" << v;
      ASSERT_TRUE(within_mult_band(linear, v, 2)) << "v=" << v;
      ASSERT_GE(fast, linear) << "v=" << v;
    }
  }
}

TEST(ReadFast, EveryPrefixBanded) {
  for (const std::uint64_t k : {2u, 3u, 5u}) {
    KMultCounterCorrected counter(1, k);
    for (std::uint64_t v = 1; v <= 3000; ++v) {
      counter.increment(0);
      const std::uint64_t x = counter.read_fast(0);
      ASSERT_TRUE(within_mult_band(x, v, k)) << "k=" << k << " v=" << v;
    }
  }
}

TEST(ReadFast, StepComplexityIsLogarithmicInBoundary) {
  // A cold linear read scans ~2 positions per interval; read_fast probes
  // O(log2 S) switches. Drive the prefix far out and compare.
  constexpr unsigned kN = 4;
  const std::uint64_t k = 2;
  KMultCounterCorrected counter(kN, k);
  for (std::uint64_t i = 0; i < 3'000'000; ++i) {
    counter.increment(static_cast<unsigned>(i % kN));
  }
  const std::uint64_t boundary = counter.first_unset_switch_unrecorded();
  ASSERT_GT(boundary, 8u);  // the workload must have set many switches
  const std::uint64_t fast_steps =
      base::steps_of([&] { (void)counter.read_fast(0); });
  // Doubling ≤ log2(S)+2 probes, binary search ≤ log2(S), verify = 2.
  EXPECT_LE(fast_steps, 2 * base::ceil_log2(boundary + 2) + 5);
}

TEST(ReadFast, WaitFreeUnderContinuousIncrements) {
  constexpr unsigned kN = 4;
  KMultCounterCorrected counter(kN, 2);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> started{0};
  std::atomic<std::uint64_t> finished{0};
  std::vector<std::thread> incrementers;
  for (unsigned pid = 0; pid + 1 < kN; ++pid) {
    incrementers.emplace_back([&, pid] {
      while (!stop.load(std::memory_order_acquire)) {
        started.fetch_add(1, std::memory_order_relaxed);
        counter.increment(pid);
        finished.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t before = finished.load(std::memory_order_relaxed);
    const std::uint64_t x = counter.read_fast(kN - 1);
    const std::uint64_t after = started.load(std::memory_order_relaxed);
    const std::uint64_t v_lo = core::mult_band_v_min(x, counter.k());
    const std::uint64_t v_hi = core::mult_band_v_max(x, counter.k());
    ASSERT_LE(v_lo, after) << "read " << x << " too large for window";
    ASSERT_GE(v_hi, before) << "read " << x << " too small for window";
  }
  stop.store(true, std::memory_order_release);
  for (auto& thread : incrementers) thread.join();
}

// The retry loop is bounded through the helping array (ROADMAP
// follow-up replacing the fixed 8 attempts): every failed verification
// witnesses a fresh announce, and after at most 2n+1 post-baseline
// failures some process's H-pair has advanced by ≥ 2, which returns a
// helped value. Pin the 2n+2 attempt bound under a writer-greedy
// adversarial schedule that maximizes boundary movement between the
// reader's probes.
class ReadFastRetryBound : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReadFastRetryBound, AttemptsBoundedByHelping) {
  const std::uint64_t seed = GetParam();
  constexpr unsigned kN = 4;
  constexpr unsigned kReader = kN - 1;
  constexpr std::uint64_t kK = 64;  // long bootstrap: every increment of
                                    // the first k+1 announces, keeping
                                    // the boundary moving under the
                                    // reader's probes
  constexpr int kWriterOps = 300;
  const std::uint64_t kAttemptBound = 2 * std::uint64_t{kN} + 2;
  KMultCounterCorrected counter(kN, kK);

  std::uint64_t max_attempts = 0;
  std::vector<std::function<void()>> programs;
  for (unsigned pid = 0; pid + 1 < kN; ++pid) {
    programs.emplace_back([&counter, pid] {
      for (int i = 0; i < kWriterOps; ++i) counter.increment(pid);
    });
  }
  programs.emplace_back([&] {
    for (int i = 0; i < 25; ++i) {
      const std::uint64_t x = counter.read_fast(kReader);
      const std::uint64_t attempts =
          counter.last_read_fast_attempts(kReader);
      if (attempts > max_attempts) max_attempts = attempts;
      // Coarse sanity on the value: a read never exceeds k times the
      // number of announced (≤ performed) increments.
      ASSERT_LE(x, kK * std::uint64_t{(kN - 1) * kWriterOps});
    }
  });

  // Writer-greedy picker: the reader advances one step for every
  // `stride` writer steps, so the set prefix grows between a
  // verification's two probes as often as the schedule allows. The seed
  // varies the stride and phase.
  std::uint64_t tick = seed * 13;
  const std::uint64_t stride = 5 + seed % 7;
  sim::SchedulePicker picker =
      [&tick, stride](const std::vector<unsigned>& runnable) -> unsigned {
    ++tick;
    if (runnable.size() == 1) return runnable[0];
    const bool reader_runnable = runnable.back() == kReader;
    if (reader_runnable && tick % stride == 0) return kReader;
    const std::size_t writers =
        runnable.size() - (reader_runnable ? 1 : 0);
    return runnable[tick % writers];
  };
  sim::StepScheduler::run(std::move(programs), picker);

  EXPECT_LE(max_attempts, kAttemptBound) << "seed " << seed;
  // The schedule must actually have forced retries, or the bound above
  // pins nothing (deterministic stepper ⇒ stable per seed); and the
  // retries must resolve through the helping array, not luck.
  EXPECT_GE(max_attempts, 2u) << "seed " << seed;
  EXPECT_GT(counter.reads_via_helping(kReader), 0u) << "seed " << seed;
  // Quiescent read after the run needs exactly one attempt.
  (void)counter.read_fast(kReader);
  EXPECT_EQ(counter.last_read_fast_attempts(kReader), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReadFastRetryBound,
                         ::testing::Range<std::uint64_t>(0, 10));

// Mixed linear/fast readers under controlled adversarial schedules:
// the combined history must still satisfy k-multiplicative
// linearizability (fast reads decode sharper positions than linear
// reads; monotone consistency between the two styles is the risk).
class ReadFastScheduleSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ReadFastScheduleSweep, MixedReaderHistoryChecks) {
  const std::uint64_t seed = GetParam();
  constexpr unsigned kN = 4;
  const std::uint64_t k = 2;
  KMultCounterCorrected counter(kN, k);
  sim::HistoryRecorder history(kN);
  std::vector<std::function<void()>> programs;
  for (unsigned pid = 0; pid < kN; ++pid) {
    programs.emplace_back([&, pid] {
      sim::Rng rng(seed * 97 + pid);
      for (int i = 0; i < 40; ++i) {
        const double roll =
            static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
        if (roll < 0.2) {
          history.record_read(pid, [&] { return counter.read(pid); });
        } else if (roll < 0.4) {
          history.record_read(pid, [&] { return counter.read_fast(pid); });
        } else {
          history.record_increment(pid, [&] { counter.increment(pid); });
        }
      }
    });
  }
  sim::StepScheduler::run(std::move(programs), seed);
  const auto result = sim::check_counter_history(history.merged(), k);
  ASSERT_TRUE(result.ok) << "seed " << seed << ": " << result.violation;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReadFastScheduleSweep,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace approx::core
