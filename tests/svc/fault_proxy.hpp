// fault_proxy.hpp — deterministic in-process TCP fault injection for
// the chaos suite (tests/svc/test_chaos.cpp).
//
// A loopback TCP proxy on its own thread: clients connect to port()
// and the proxy dials the real server at `upstream_port`, forwarding
// bytes both ways — until a test tells it to misbehave. The supported
// faults are the ones a real network actually serves:
//
//   * trickle     — server→client bytes are re-sent ONE BYTE PER SEND
//                   (framing torture: every length prefix, varint and
//                   payload byte arrives alone);
//   * truncate    — one-shot: after N more server→client bytes, both
//                   sides of every session are closed (a mid-frame cut
//                   at an exact byte offset — the test sweeps N);
//   * blackhole   — stop forwarding in BOTH directions while keeping
//                   every socket open (a half-open/middlebox-eaten
//                   session: TCP liveness without stream liveness);
//   * kill        — close all current sessions now (a crashed peer).
//
// All switches are atomics flipped from the test thread; the proxy
// thread applies them on its next poll round (≤ kPollSliceMs away).
// Sessions are independent: a new connection after a truncate/kill
// starts clean. Counters (sessions_accepted, bytes_forwarded) let
// tests await proxy-side progress without sleeping blind.
//
// Test-only by design (unbounded buffering, 1-slot listen backlog
// semantics, no TLS/authn): the production path ships no proxy.
#pragma once

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace approx::svc::testing {

class FaultProxy {
 public:
  /// Listens on an ephemeral loopback port, forwarding every accepted
  /// connection to 127.0.0.1:`upstream_port`.
  explicit FaultProxy(std::uint16_t upstream_port)
      : upstream_port_(upstream_port) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
    if (listen_fd_ < 0) return;
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 16) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    running_.store(true, std::memory_order_release);
    thread_ = std::thread([this] { loop(); });
  }

  ~FaultProxy() { stop(); }

  FaultProxy(const FaultProxy&) = delete;
  FaultProxy& operator=(const FaultProxy&) = delete;

  [[nodiscard]] bool ok() const noexcept { return listen_fd_ >= 0; }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  void stop() {
    if (!running_.exchange(false, std::memory_order_acq_rel)) return;
    if (thread_.joinable()) thread_.join();
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
  }

  /// Server→client bytes leave one byte per send() while set.
  void set_trickle(bool on) {
    trickle_.store(on, std::memory_order_relaxed);
  }

  /// One-shot: after `bytes` more server→client bytes have been
  /// forwarded, every session is closed (both sides). Counted across
  /// sessions; re-arm per cut.
  void set_truncate_after(std::int64_t bytes) {
    truncate_after_.store(bytes, std::memory_order_relaxed);
  }

  /// While set, NOTHING is forwarded in either direction but every
  /// socket stays open — the half-open peer.
  void set_blackhole(bool on) {
    blackhole_.store(on, std::memory_order_relaxed);
  }

  /// Close all current sessions on the next poll round.
  void kill_sessions() {
    kill_epoch_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t sessions_accepted() const noexcept {
    return sessions_accepted_.load(std::memory_order_relaxed);
  }
  /// Server→client payload bytes actually forwarded so far.
  [[nodiscard]] std::uint64_t bytes_forwarded() const noexcept {
    return bytes_forwarded_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr int kPollSliceMs = 2;

  struct Session {
    int client_fd = -1;
    int upstream_fd = -1;
    std::string to_client;    // server→client bytes awaiting forward
    std::string to_upstream;  // client→server bytes awaiting forward
    bool dead = false;
  };

  static void set_nonblock(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }

  int dial_upstream() const {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(upstream_port_);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      return -1;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    set_nonblock(fd);
    return fd;
  }

  static void close_session(Session& session) {
    if (session.client_fd >= 0) ::close(session.client_fd);
    if (session.upstream_fd >= 0) ::close(session.upstream_fd);
    session.client_fd = -1;
    session.upstream_fd = -1;
    session.dead = true;
  }

  /// Drains readable bytes from `fd` into `buf`; false on EOF/error.
  static bool slurp(int fd, std::string& buf) {
    char chunk[4096];
    while (true) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        buf.append(chunk, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) return false;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
  }

  /// Sends up to `limit` bytes of `buf` to `fd` (1 at a time when
  /// `one_byte`); erases what went out, adds it to bytes_forwarded_
  /// when `count`. False on a dead socket.
  bool pump(int fd, std::string& buf, std::size_t limit, bool one_byte,
            bool count) {
    std::size_t sent_total = 0;
    while (sent_total < limit && sent_total < buf.size()) {
      const std::size_t want =
          one_byte ? 1 : std::min(buf.size(), limit) - sent_total;
      const ssize_t n = ::send(fd, buf.data() + sent_total, want,
                               MSG_NOSIGNAL);
      if (n > 0) {
        sent_total += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    if (sent_total > 0) {
      buf.erase(0, sent_total);
      if (count) {
        bytes_forwarded_.fetch_add(sent_total, std::memory_order_relaxed);
      }
    }
    return true;
  }

  void loop() {
    std::vector<Session> sessions;
    std::uint64_t seen_kill = kill_epoch_.load(std::memory_order_relaxed);
    std::vector<pollfd> pfds;
    while (running_.load(std::memory_order_acquire)) {
      const std::uint64_t kill_now =
          kill_epoch_.load(std::memory_order_relaxed);
      if (kill_now != seen_kill) {
        seen_kill = kill_now;
        for (Session& session : sessions) close_session(session);
      }
      const bool hole = blackhole_.load(std::memory_order_relaxed);
      pfds.clear();
      pfds.push_back({listen_fd_, POLLIN, 0});
      for (Session& session : sessions) {
        if (session.dead) continue;
        short ce = 0;
        short ue = 0;
        if (!hole) {
          ce |= POLLIN;
          ue |= POLLIN;
          if (!session.to_client.empty()) ce |= POLLOUT;
          if (!session.to_upstream.empty()) ue |= POLLOUT;
        }
        pfds.push_back({session.client_fd, ce, 0});
        pfds.push_back({session.upstream_fd, ue, 0});
      }
      if (::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                 kPollSliceMs) < 0 &&
          errno != EINTR) {
        break;
      }
      if (pfds[0].revents & POLLIN) {
        while (true) {
          const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                                   SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (fd < 0) break;
          int one = 1;
          ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          Session session;
          session.client_fd = fd;
          session.upstream_fd = dial_upstream();
          if (session.upstream_fd < 0) {
            ::close(fd);
            continue;
          }
          sessions_accepted_.fetch_add(1, std::memory_order_relaxed);
          sessions.push_back(std::move(session));
        }
      }
      if (hole) continue;  // sockets open, nothing moves
      for (Session& session : sessions) {
        if (session.dead) continue;
        if (!slurp(session.client_fd, session.to_upstream) ||
            !slurp(session.upstream_fd, session.to_client)) {
          close_session(session);
          continue;
        }
        // Client→server: faithful.
        if (!pump(session.upstream_fd, session.to_upstream,
                  session.to_upstream.size(), /*one_byte=*/false,
                  /*count=*/false)) {
          close_session(session);
          continue;
        }
        // Server→client: where the faults live.
        const bool one_byte = trickle_.load(std::memory_order_relaxed);
        const std::int64_t cut =
            truncate_after_.load(std::memory_order_relaxed);
        std::size_t limit = session.to_client.size();
        if (cut >= 0) limit = std::min(limit, static_cast<std::size_t>(cut));
        const std::uint64_t before =
            bytes_forwarded_.load(std::memory_order_relaxed);
        if (!pump(session.client_fd, session.to_client, limit, one_byte,
                  /*count=*/true)) {
          close_session(session);
          continue;
        }
        if (cut >= 0) {
          const std::uint64_t sent =
              bytes_forwarded_.load(std::memory_order_relaxed) - before;
          const std::int64_t left = cut - static_cast<std::int64_t>(sent);
          truncate_after_.store(left > 0 ? left : -1,
                                std::memory_order_relaxed);
          if (left <= 0) {
            // The cut: every session dies mid-byte-stream, one-shot.
            for (Session& victim : sessions) close_session(victim);
            break;
          }
        }
      }
      std::erase_if(sessions,
                    [](const Session& session) { return session.dead; });
    }
    for (Session& session : sessions) close_session(session);
  }

  std::uint16_t upstream_port_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> trickle_{false};
  std::atomic<std::int64_t> truncate_after_{-1};
  std::atomic<bool> blackhole_{false};
  std::atomic<std::uint64_t> kill_epoch_{0};
  std::atomic<std::uint64_t> sessions_accepted_{0};
  std::atomic<std::uint64_t> bytes_forwarded_{0};
};

}  // namespace approx::svc::testing
