// Wire v5 tests: labeled (top-k) registry entries riding FULL/DELTA
// frames, the version-byte ratchet (5 iff a top-k entry rides), decode
// hardening (row/label caps, rank-order enforcement, shape mismatches,
// truncation), and the metricsz exposition pair (request control
// record + text data frame) — an untrusted frame may be rejected,
// never misdecoded.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "shard/registry.hpp"
#include "svc/wire.hpp"

namespace approx::svc {
namespace {

using shard::ErrorModel;
using shard::Sample;
using shard::TelemetryFrame;

std::string_view payload_of(const std::string& wire) {
  return std::string_view(wire).substr(kFramePrefixBytes);
}

Sample topk_sample(const std::string& name) {
  Sample sample;
  sample.name = name;
  sample.model = ErrorModel::kTopK;
  sample.error_bound = 0;  // max-register rows: exact
  sample.top_labels = {"10.0.0.1:4242", "10.0.0.2:4242", "10.0.0.3:4242"};
  sample.bucket_counts = {5000, 1200, 37};  // ranked, value-descending
  sample.value = 5000;
  return sample;
}

TelemetryFrame topk_frame(std::uint64_t sequence,
                          std::uint64_t registry_version) {
  TelemetryFrame frame;
  frame.sequence = sequence;
  frame.registry_version = registry_version;
  Sample a;
  a.name = "aa_scalar";
  a.model = ErrorModel::kExact;
  a.value = 7;
  frame.samples.push_back(a);
  frame.samples.push_back(topk_sample("tt_talkers"));
  return frame;
}

/// Hand-assembled payload header (no stream prefix).
std::string raw_header(std::uint8_t version, FrameKind kind,
                       std::uint64_t sequence,
                       std::uint64_t registry_version) {
  std::string out;
  out.push_back(static_cast<char>(kWireMagic0));
  out.push_back(static_cast<char>(kWireMagic1));
  out.push_back(static_cast<char>(version));
  out.push_back(static_cast<char>(kind));
  append_uvarint(out, sequence);
  append_uvarint(out, registry_version);
  append_uvarint(out, 0);  // collect_ns
  return out;
}

/// A hand-assembled v5 full carrying one top-k entry with the given
/// rows; lets the hardening tests lie about counts and ordering.
std::string raw_topk_full(
    std::uint64_t nrows_claim,
    const std::vector<std::pair<std::string, std::uint64_t>>& rows) {
  std::string payload = raw_header(kTopKVersion, FrameKind::kFull, 1, 1);
  append_uvarint(payload, 1);  // entry count
  append_uvarint(payload, 1);  // name_len
  payload.push_back('t');
  payload.push_back(static_cast<char>(ErrorModel::kTopK));
  append_uvarint(payload, 0);  // bound
  append_uvarint(payload, nrows_claim);
  for (const auto& [label, value] : rows) {
    append_uvarint(payload, label.size());
    payload.append(label);
    append_uvarint(payload, value);
  }
  return payload;
}

TEST(WireObs, VersionByteIsV5IffTopKRides) {
  TelemetryFrame frame = topk_frame(1, 1);
  std::string wire;
  encode_full_frame(frame, 0, wire);
  EXPECT_EQ(static_cast<unsigned char>(payload_of(wire)[2]), kTopKVersion);

  // Without the top-k entry the ratchet relaxes back to v1.
  TelemetryFrame scalars = topk_frame(1, 1);
  scalars.samples.pop_back();
  encode_full_frame(scalars, 0, wire);
  EXPECT_EQ(static_cast<unsigned char>(payload_of(wire)[2]), kWireVersion);

  // Deltas: a labeled entry forces 5, buckets alone only 4.
  std::vector<DeltaEntry> entries;
  entries.emplace_back(0, 0, std::vector<std::uint64_t>{1, 2, 3},
                       std::vector<std::string>{"a", "b", "c"});
  encode_delta_frame(2, 1, 0, 1, entries, wire);
  EXPECT_EQ(static_cast<unsigned char>(payload_of(wire)[2]), kTopKVersion);
  entries.clear();
  entries.emplace_back(0, 0, std::vector<std::uint64_t>{1, 2, 3, 4, 5});
  encode_delta_frame(2, 1, 0, 1, entries, wire);
  EXPECT_EQ(static_cast<unsigned char>(payload_of(wire)[2]), kVectorVersion);
}

TEST(WireObs, TopKFullRoundTrip) {
  TelemetryFrame frame = topk_frame(3, 2);
  std::string wire;
  encode_full_frame(frame, 77, wire);

  MaterializedView view;
  ASSERT_EQ(view.apply(payload_of(wire)), ApplyResult::kApplied);
  ASSERT_EQ(view.samples().size(), 2u);
  const Sample& topk = view.samples()[1];
  EXPECT_EQ(topk.name, "tt_talkers");
  EXPECT_EQ(topk.model, ErrorModel::kTopK);
  EXPECT_EQ(topk.top_labels,
            (std::vector<std::string>{"10.0.0.1:4242", "10.0.0.2:4242",
                                      "10.0.0.3:4242"}));
  EXPECT_EQ(topk.bucket_counts, (std::vector<std::uint64_t>{5000, 1200, 37}));
  // The scalar value is derived from row 0, never shipped.
  EXPECT_EQ(topk.value, 5000u);
  EXPECT_EQ(view.samples()[0].value, 7u);

  // An empty directory (no rows yet) round-trips with value 0.
  TelemetryFrame empty = topk_frame(4, 3);
  empty.samples[1].top_labels.clear();
  empty.samples[1].bucket_counts.clear();
  empty.samples[1].value = 0;
  encode_full_frame(empty, 0, wire);
  ASSERT_EQ(view.apply(payload_of(wire)), ApplyResult::kApplied);
  EXPECT_TRUE(view.samples()[1].top_labels.empty());
  EXPECT_EQ(view.samples()[1].value, 0u);
}

TEST(WireObs, TopKDeltaRoundTripGrowsAndReranks) {
  TelemetryFrame frame = topk_frame(1, 1);
  std::string wire;
  encode_full_frame(frame, 0, wire);
  MaterializedView view;
  ASSERT_EQ(view.apply(payload_of(wire)), ApplyResult::kApplied);

  // The directory grew a row and re-ranked; the delta ships the whole
  // ranked list (top-k rows are small by construction).
  std::vector<DeltaEntry> entries;
  entries.emplace_back(
      1, 0, std::vector<std::uint64_t>{9000, 5000, 1300, 37},
      std::vector<std::string>{"10.0.0.9:1", "10.0.0.1:4242",
                               "10.0.0.2:4242", "10.0.0.3:4242"});
  encode_delta_frame(2, 1, 0, 1, entries, wire);
  ASSERT_EQ(view.apply(payload_of(wire)), ApplyResult::kApplied);
  const Sample& topk = view.samples()[1];
  ASSERT_EQ(topk.top_labels.size(), 4u);
  EXPECT_EQ(topk.top_labels[0], "10.0.0.9:1");
  EXPECT_EQ(topk.bucket_counts[0], 9000u);
  EXPECT_EQ(topk.value, 9000u);  // derived top value moved with the rank
  EXPECT_EQ(view.sequence(), 2u);
}

TEST(WireObs, TopKHardeningRejectsBadRowLists) {
  // Row count beyond the cap: rejected before any allocation.
  {
    MaterializedView view;
    const std::string payload = raw_topk_full(kMaxWireTopKRows + 1, {});
    EXPECT_EQ(view.apply(payload), ApplyResult::kCorrupt);
    EXPECT_TRUE(view.samples().empty());
  }
  // Label longer than the cap.
  {
    MaterializedView view;
    const std::string big(kMaxTopKLabelBytes + 1, 'x');
    const std::string payload = raw_topk_full(1, {{big, 5}});
    EXPECT_EQ(view.apply(payload), ApplyResult::kCorrupt);
  }
  // The cap itself is fine (boundary).
  {
    MaterializedView view;
    const std::string edge(kMaxTopKLabelBytes, 'x');
    const std::string payload = raw_topk_full(1, {{edge, 5}});
    EXPECT_EQ(view.apply(payload), ApplyResult::kApplied);
  }
  // Rows not value-descending: rows ride ranked or not at all.
  {
    MaterializedView view;
    const std::string payload = raw_topk_full(2, {{"a", 5}, {"b", 6}});
    EXPECT_EQ(view.apply(payload), ApplyResult::kCorrupt);
  }
  // Ties are legal (equal values are a valid ranking).
  {
    MaterializedView view;
    const std::string payload = raw_topk_full(2, {{"a", 5}, {"b", 5}});
    EXPECT_EQ(view.apply(payload), ApplyResult::kApplied);
  }
  // A v4 frame may not carry the top-k model byte at all.
  {
    MaterializedView view;
    std::string payload = raw_topk_full(1, {{"a", 5}});
    payload[2] = static_cast<char>(kVectorVersion);
    EXPECT_EQ(view.apply(payload), ApplyResult::kCorrupt);
  }
}

TEST(WireObs, TopKDeltaShapeMismatchesAreCorruptAndAtomic) {
  TelemetryFrame frame = topk_frame(1, 1);
  std::string wire;
  encode_full_frame(frame, 0, wire);
  MaterializedView view;
  ASSERT_EQ(view.apply(payload_of(wire)), ApplyResult::kApplied);
  const std::vector<Sample> before = view.samples();

  // Scalar delta aimed at the top-k row.
  std::vector<DeltaEntry> entries;
  entries.emplace_back(1, 4242);
  encode_delta_frame(2, 1, 0, 1, entries, wire);
  EXPECT_EQ(view.apply(payload_of(wire)), ApplyResult::kCorrupt);

  // Top-k delta aimed at the scalar row.
  entries.clear();
  entries.emplace_back(0, 0, std::vector<std::uint64_t>{5},
                       std::vector<std::string>{"a"});
  encode_delta_frame(2, 1, 0, 1, entries, wire);
  EXPECT_EQ(view.apply(payload_of(wire)), ApplyResult::kCorrupt);

  // Histogram-shaped delta aimed at the top-k row.
  entries.clear();
  entries.emplace_back(1, 0, std::vector<std::uint64_t>{1, 2, 3});
  encode_delta_frame(2, 1, 0, 1, entries, wire);
  EXPECT_EQ(view.apply(payload_of(wire)), ApplyResult::kCorrupt);

  // An EMPTY top-k row list in a delta is malformed by construction
  // (hand-assembled: tag 1, nrows 0 — an unchanged directory simply
  // does not ride the delta).
  std::string payload = raw_header(kTopKVersion, FrameKind::kDelta, 2, 1);
  append_uvarint(payload, 1);  // base_seq
  append_uvarint(payload, 1);  // entry count
  append_uvarint(payload, 1);  // index
  append_uvarint(payload, 1);  // tag: top-k
  append_uvarint(payload, 0);  // nrows 0
  EXPECT_EQ(view.apply(payload), ApplyResult::kCorrupt);

  // Nothing stuck.
  ASSERT_EQ(view.samples().size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(view.samples()[i].value, before[i].value) << i;
    EXPECT_EQ(view.samples()[i].top_labels, before[i].top_labels) << i;
  }
  EXPECT_EQ(view.sequence(), 1u);
}

TEST(WireObs, TopKTruncationAtEveryLengthRejects) {
  TelemetryFrame frame = topk_frame(1, 1);
  std::string wire;
  encode_full_frame(frame, 0, wire);
  const std::string_view payload = payload_of(wire);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    MaterializedView view;
    EXPECT_EQ(view.apply(payload.substr(0, len)), ApplyResult::kCorrupt)
        << "accepted a frame truncated to " << len << " bytes";
    EXPECT_TRUE(view.samples().empty());
  }
}

TEST(WireObs, MetricszRequestRecordRoundTrip) {
  std::string record;
  encode_metricsz_request_record(record);
  // Control-channel framing: 0xC5 + u32le length + payload.
  ASSERT_GT(record.size(), 5u);
  const std::string_view payload = std::string_view(record).substr(5);
  ControlFrame control;
  ASSERT_TRUE(decode_control_payload(payload, control));
  EXPECT_EQ(control.kind, FrameKind::kMetricszRequest);

  // The request is bodyless: trailing garbage is a protocol violation.
  std::string padded(payload);
  padded.push_back('\0');
  EXPECT_FALSE(decode_control_payload(padded, control));
  // And it is a v5 record: any other version byte is rejected.
  std::string skewed(payload);
  skewed[2] = static_cast<char>(kControlVersion);
  EXPECT_FALSE(decode_control_payload(skewed, control));
}

TEST(WireObs, MetricszFrameRoundTrip) {
  const std::string text =
      "# __sys/server.tick.collect_ns model=hist bound=4\n"
      "approx_sys_server_tick_collect_ns_count 56\n";
  std::string wire;
  encode_metricsz_frame(41, 7, 123456, text, wire);
  ASSERT_GT(wire.size(), kFramePrefixBytes);
  EXPECT_EQ(read_u32le(wire.data()), wire.size() - kFramePrefixBytes);
  const std::string_view payload = payload_of(wire);
  EXPECT_EQ(static_cast<unsigned char>(payload[2]), kTopKVersion);
  EXPECT_EQ(static_cast<FrameKind>(payload[3]), FrameKind::kMetricsz);

  std::string decoded;
  ASSERT_TRUE(decode_metricsz(payload, decoded));
  EXPECT_EQ(decoded, text);

  // Empty pages are legal (a server with no __sys/ entries and no
  // trace ring still answers).
  encode_metricsz_frame(1, 1, 0, "", wire);
  ASSERT_TRUE(decode_metricsz(payload_of(wire), decoded));
  EXPECT_TRUE(decoded.empty());
}

TEST(WireObs, MetricszDecodeRejectsForeignAndTruncatedPayloads) {
  const std::string text = "approx_sys_x 1\n";
  std::string wire;
  encode_metricsz_frame(41, 7, 123456, text, wire);
  const std::string payload(payload_of(wire));
  std::string decoded;

  // Truncated header (the text itself may be any length, including 0,
  // so only the 7 header fields are length-checkable).
  for (std::size_t len = 0; len < 7; ++len) {
    EXPECT_FALSE(decode_metricsz(payload.substr(0, len), decoded)) << len;
  }
  // Wrong kind / version / magic.
  std::string wrong = payload;
  wrong[3] = static_cast<char>(FrameKind::kFull);
  EXPECT_FALSE(decode_metricsz(wrong, decoded));
  wrong = payload;
  wrong[2] = static_cast<char>(kVectorVersion);
  EXPECT_FALSE(decode_metricsz(wrong, decoded));
  wrong = payload;
  wrong[0] = 0;
  EXPECT_FALSE(decode_metricsz(wrong, decoded));

  // A regular data frame is not a metricsz frame.
  TelemetryFrame frame = topk_frame(1, 1);
  encode_full_frame(frame, 0, wire);
  EXPECT_FALSE(decode_metricsz(payload_of(wire), decoded));

  // And the view rejects the metricsz kind (clients that never asked
  // never see it; ones that did intercept it before apply).
  encode_metricsz_frame(41, 7, 0, text, wire);
  MaterializedView view;
  EXPECT_EQ(view.apply(payload_of(wire)), ApplyResult::kCorrupt);
  EXPECT_TRUE(view.samples().empty());
}

}  // namespace
}  // namespace approx::svc
