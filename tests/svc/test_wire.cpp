// Tests for the telemetry wire format (src/svc/wire.hpp): varint
// primitives, full/delta round trips over every error-model/bound
// combination, fuzz-ish truncation and corruption rejection, and the
// delta-on-top-of-full reconstruction contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "base/backend.hpp"
#include "shard/aggregator.hpp"
#include "shard/registry.hpp"
#include "sim/workload.hpp"
#include "svc/wire.hpp"

namespace approx::svc {
namespace {

using shard::ErrorModel;
using shard::Sample;
using shard::TelemetryFrame;

/// Payload view of a stream-ready encode (skips the u32le prefix).
std::string_view payload_of(const std::string& wire) {
  return std::string_view(wire).substr(kFramePrefixBytes);
}

std::uint32_t prefix_of(const std::string& wire) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(wire[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(wire[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(wire[2]))
             << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(wire[3]))
             << 24;
}

TEST(Varint, RoundTripBoundaries) {
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 16383,
                                 16384,
                                 (1ull << 32) - 1,
                                 1ull << 32,
                                 (1ull << 63) - 1,
                                 1ull << 63,
                                 std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t value : cases) {
    std::string buf;
    append_uvarint(buf, value);
    ASSERT_LE(buf.size(), 10u);
    const char* cursor = buf.data();
    std::uint64_t decoded = 0;
    ASSERT_TRUE(read_uvarint(&cursor, buf.data() + buf.size(), decoded));
    EXPECT_EQ(decoded, value);
    EXPECT_EQ(cursor, buf.data() + buf.size());
  }
}

TEST(Varint, RejectsTruncatedAndOverlong) {
  std::string buf;
  append_uvarint(buf, std::numeric_limits<std::uint64_t>::max());
  for (std::size_t len = 0; len < buf.size(); ++len) {
    const char* cursor = buf.data();
    std::uint64_t value = 0;
    EXPECT_FALSE(read_uvarint(&cursor, buf.data() + len, value))
        << "accepted a varint truncated to " << len << " bytes";
  }
  // 10 continuation bytes and beyond: overlong.
  const std::string overlong(11, static_cast<char>(0x80));
  const char* cursor = overlong.data();
  std::uint64_t value = 0;
  EXPECT_FALSE(
      read_uvarint(&cursor, overlong.data() + overlong.size(), value));
  // A 10th byte that would overflow 64 bits.
  std::string overflow(9, static_cast<char>(0x80));
  overflow.push_back(0x02);  // bit 64
  cursor = overflow.data();
  EXPECT_FALSE(
      read_uvarint(&cursor, overflow.data() + overflow.size(), value));
}

/// Hand-assembled frames covering every model × a spread of bounds and
/// values, incl. the u64 extremes the varint must carry.
TelemetryFrame synthetic_frame(std::uint64_t sequence,
                               std::uint64_t registry_version) {
  TelemetryFrame frame;
  frame.sequence = sequence;
  frame.registry_version = registry_version;
  const ErrorModel models[] = {ErrorModel::kExact, ErrorModel::kMultiplicative,
                               ErrorModel::kAdditive};
  const std::uint64_t bounds[] = {0, 1, 2, 64, 1ull << 32,
                                  std::numeric_limits<std::uint64_t>::max()};
  const std::uint64_t values[] = {0, 1, 127, 128, 1ull << 40,
                                  std::numeric_limits<std::uint64_t>::max()};
  unsigned i = 0;
  for (const ErrorModel model : models) {
    for (const std::uint64_t bound : bounds) {
      Sample sample;
      sample.name = "stat_" + std::to_string(i);
      if (i % 5 == 0) sample.name += std::string(40, 'x');  // long names
      sample.model = model;
      sample.error_bound = bound;
      sample.value = values[i % (sizeof(values) / sizeof(values[0]))];
      frame.samples.push_back(sample);
      ++i;
    }
  }
  return frame;
}

void expect_view_matches(const MaterializedView& view,
                         const TelemetryFrame& frame) {
  ASSERT_EQ(view.samples().size(), frame.samples.size());
  for (std::size_t i = 0; i < frame.samples.size(); ++i) {
    EXPECT_EQ(view.samples()[i].name, frame.samples[i].name) << i;
    EXPECT_EQ(view.samples()[i].model, frame.samples[i].model) << i;
    EXPECT_EQ(view.samples()[i].error_bound, frame.samples[i].error_bound)
        << i;
    EXPECT_EQ(view.samples()[i].value, frame.samples[i].value) << i;
  }
  EXPECT_EQ(view.sequence(), frame.sequence);
  EXPECT_EQ(view.registry_version(), frame.registry_version);
}

TEST(WireFull, RoundTripEveryModelAndBound) {
  const TelemetryFrame frame = synthetic_frame(7, 42);
  std::string wire;
  encode_full_frame(frame, 123456789, wire);
  EXPECT_EQ(prefix_of(wire), wire.size() - kFramePrefixBytes);
  MaterializedView view;
  ASSERT_EQ(view.apply(payload_of(wire)), ApplyResult::kApplied);
  expect_view_matches(view, frame);
  EXPECT_EQ(view.last_collect_ns(), 123456789u);
  EXPECT_EQ(view.full_frames(), 1u);
  EXPECT_EQ(view.entry_update_seq().size(), frame.samples.size());
  for (const std::uint64_t seq : view.entry_update_seq()) {
    EXPECT_EQ(seq, frame.sequence);
  }
}

TEST(WireFull, RoundTripRandomFleetsProperty) {
  sim::Rng rng(2027);
  for (int iteration = 0; iteration < 50; ++iteration) {
    TelemetryFrame frame;
    frame.sequence = 1 + rng.below(1u << 30);
    frame.registry_version = 1 + rng.below(1u << 30);
    const unsigned count = rng.below(40);
    for (unsigned i = 0; i < count; ++i) {
      Sample sample;
      const unsigned name_len = rng.below(24);
      for (unsigned c = 0; c < name_len; ++c) {
        sample.name.push_back(static_cast<char>('a' + rng.below(26)));
      }
      sample.model = static_cast<ErrorModel>(rng.below(3));
      sample.error_bound = rng.below(1u << 31);
      sample.value =
          static_cast<std::uint64_t>(rng.below(1u << 31)) << rng.below(33);
      frame.samples.push_back(std::move(sample));
    }
    std::string wire;
    encode_full_frame(frame, 0, wire);
    MaterializedView view;
    ASSERT_EQ(view.apply(payload_of(wire)), ApplyResult::kApplied);
    expect_view_matches(view, frame);
  }
}

TEST(WireFull, TruncationRejectedAtEveryLength) {
  const TelemetryFrame frame = synthetic_frame(3, 9);
  std::string wire;
  encode_full_frame(frame, 55, wire);
  const std::string_view payload = payload_of(wire);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    MaterializedView view;
    EXPECT_EQ(view.apply(payload.substr(0, len)), ApplyResult::kCorrupt)
        << "accepted a frame truncated to " << len << " bytes";
    EXPECT_EQ(view.sequence(), 0u) << "truncated frame mutated the view";
    EXPECT_TRUE(view.samples().empty());
  }
}

TEST(WireFull, CorruptHeaderAndModelRejected) {
  const TelemetryFrame frame = synthetic_frame(3, 9);
  std::string wire;
  encode_full_frame(frame, 0, wire);
  const std::string payload(payload_of(wire));

  auto corrupted = [&](std::size_t index, char value) {
    std::string copy = payload;
    copy[index] = value;
    return copy;
  };
  MaterializedView view;
  EXPECT_EQ(view.apply(corrupted(0, 0x00)), ApplyResult::kCorrupt);  // magic0
  EXPECT_EQ(view.apply(corrupted(1, 0x00)), ApplyResult::kCorrupt);  // magic1
  EXPECT_EQ(view.apply(corrupted(2, 0x7F)), ApplyResult::kCorrupt);  // version
  EXPECT_EQ(view.apply(corrupted(3, 0x07)), ApplyResult::kCorrupt);  // kind
  EXPECT_EQ(view.apply(std::string_view{}), ApplyResult::kCorrupt);  // empty
  // Model byte of the first entry: header(4) + seq/regver/ns varints +
  // count varint + name_len varint + name bytes. Locate it by decoding.
  const char* cursor = payload.data() + 4;
  const char* const end = payload.data() + payload.size();
  std::uint64_t skip = 0;
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(read_uvarint(&cursor, end, skip));
  std::uint64_t name_len = 0;
  ASSERT_TRUE(read_uvarint(&cursor, end, name_len));
  const std::size_t model_at =
      static_cast<std::size_t>(cursor - payload.data()) +
      static_cast<std::size_t>(name_len);
  EXPECT_EQ(view.apply(corrupted(model_at, 0x09)), ApplyResult::kCorrupt);
  EXPECT_EQ(view.sequence(), 0u);
  // And the pristine payload still applies.
  EXPECT_EQ(view.apply(payload), ApplyResult::kApplied);
}

TEST(WireFull, ByteFlipFuzzNeverCorruptsSilently) {
  // Flip every byte of a valid payload in turn: each mutation must
  // either decode to kCorrupt/kNeedFull or apply cleanly — never crash
  // or leave a half-applied view (ASan/UBSan guard the memory side).
  const TelemetryFrame frame = synthetic_frame(3, 9);
  std::string wire;
  encode_full_frame(frame, 77, wire);
  const std::string payload(payload_of(wire));
  for (std::size_t i = 0; i < payload.size(); ++i) {
    for (const unsigned char flip : {0x01, 0x80, 0xFF}) {
      std::string mutated = payload;
      mutated[i] = static_cast<char>(mutated[i] ^ flip);
      MaterializedView view;
      const ApplyResult result = view.apply(mutated);
      if (result != ApplyResult::kApplied) {
        EXPECT_TRUE(view.samples().empty())
            << "rejected frame mutated the view (byte " << i << ")";
      }
    }
  }
}

TEST(WireDelta, AppliesOnTopOfFull) {
  const TelemetryFrame frame = synthetic_frame(5, 11);
  std::string wire;
  encode_full_frame(frame, 0, wire);
  MaterializedView view;
  ASSERT_EQ(view.apply(payload_of(wire)), ApplyResult::kApplied);

  const std::vector<DeltaEntry> entries = {
      {0, 999}, {3, std::numeric_limits<std::uint64_t>::max()}, {17, 0}};
  std::string delta;
  encode_delta_frame(6, 11, 0, 5, entries, delta);
  ASSERT_EQ(view.apply(payload_of(delta)), ApplyResult::kApplied);
  EXPECT_EQ(view.sequence(), 6u);
  EXPECT_EQ(view.delta_frames(), 1u);
  EXPECT_EQ(view.samples()[0].value, 999u);
  EXPECT_EQ(view.samples()[3].value,
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(view.samples()[17].value, 0u);
  // Untouched entries keep their full-frame values and update seqs.
  EXPECT_EQ(view.samples()[1].value, frame.samples[1].value);
  EXPECT_EQ(view.entry_update_seq()[0], 6u);
  EXPECT_EQ(view.entry_update_seq()[1], 5u);
  // Names/models/bounds never move via deltas.
  EXPECT_EQ(view.samples()[0].name, frame.samples[0].name);
  EXPECT_EQ(view.samples()[0].model, frame.samples[0].model);
}

TEST(WireDelta, EmptyDeltaIsAHeartbeat) {
  const TelemetryFrame frame = synthetic_frame(5, 11);
  std::string wire;
  encode_full_frame(frame, 0, wire);
  MaterializedView view;
  ASSERT_EQ(view.apply(payload_of(wire)), ApplyResult::kApplied);
  std::string delta;
  encode_delta_frame(6, 11, 0, 5, {}, delta);
  ASSERT_EQ(view.apply(payload_of(delta)), ApplyResult::kApplied);
  EXPECT_EQ(view.sequence(), 6u);
  EXPECT_EQ(view.entries_updated(), frame.samples.size());  // no new ones
}

TEST(WireDelta, RejectedWithoutAgreedBase) {
  std::string delta;
  encode_delta_frame(6, 11, 0, 5, {{0, 1}}, delta);
  MaterializedView fresh;  // no full frame yet
  EXPECT_EQ(fresh.apply(payload_of(delta)), ApplyResult::kNeedFull);

  const TelemetryFrame frame = synthetic_frame(5, 11);
  std::string wire;
  encode_full_frame(frame, 0, wire);
  MaterializedView view;
  ASSERT_EQ(view.apply(payload_of(wire)), ApplyResult::kApplied);
  // Wrong registry version: the name table moved underneath the delta.
  std::string wrong_version;
  encode_delta_frame(6, 12, 0, 5, {{0, 1}}, wrong_version);
  EXPECT_EQ(view.apply(payload_of(wrong_version)), ApplyResult::kNeedFull);
  // Sequence gap: delta's base is newer than the view.
  std::string gapped;
  encode_delta_frame(9, 11, 0, 8, {{0, 1}}, gapped);
  EXPECT_EQ(view.apply(payload_of(gapped)), ApplyResult::kNeedFull);
  // Out-of-range index against the agreed table: corrupt.
  std::string out_of_range;
  encode_delta_frame(6, 11, 0, 5, {{frame.samples.size(), 1}}, out_of_range);
  EXPECT_EQ(view.apply(payload_of(out_of_range)), ApplyResult::kCorrupt);
  // The view survived all three rejections untouched.
  expect_view_matches(view, frame);
}

TEST(WireDelta, StaleAndDuplicateFramesAreSkipped) {
  const TelemetryFrame frame = synthetic_frame(5, 11);
  std::string wire;
  encode_full_frame(frame, 0, wire);
  MaterializedView view;
  ASSERT_EQ(view.apply(payload_of(wire)), ApplyResult::kApplied);
  ASSERT_EQ(view.apply(payload_of(wire)), ApplyResult::kApplied);  // dup
  EXPECT_EQ(view.stale_frames_skipped(), 1u);
  EXPECT_EQ(view.full_frames(), 1u);
  std::string delta;
  encode_delta_frame(4, 11, 0, 2, {{0, 123}}, delta);  // older than view
  ASSERT_EQ(view.apply(payload_of(delta)), ApplyResult::kApplied);
  EXPECT_EQ(view.stale_frames_skipped(), 2u);
  EXPECT_EQ(view.samples()[0].value, frame.samples[0].value);  // untouched
}

// --- wire v2: subscription filters + control frames -------------------

/// Payload view of a control record (skips the 0xC5 + u32le framing).
std::string_view control_payload_of(const std::string& record) {
  return std::string_view(record).substr(kControlPrefixBytes);
}

TEST(Filter, MatchSemanticsNormalizationAndCanonicalKey) {
  SubscriptionFilter filter;
  filter.exact = {"errors", "requests", "errors"};  // dup
  filter.prefixes = {"svc_", "db_"};
  filter.normalize();
  EXPECT_EQ(filter.exact.size(), 2u);  // deduped
  EXPECT_TRUE(filter.matches("requests"));
  EXPECT_TRUE(filter.matches("errors"));
  EXPECT_TRUE(filter.matches("svc_anything"));
  EXPECT_TRUE(filter.matches("db_"));  // prefix matches itself
  EXPECT_FALSE(filter.matches("request"));  // exact is not a prefix
  EXPECT_FALSE(filter.matches("sv"));
  EXPECT_FALSE(filter.matches(""));

  SubscriptionFilter everything;
  EXPECT_TRUE(everything.pass_all());
  EXPECT_FALSE(filter.pass_all());

  // Reordered lists normalize to the same canonical key (one server
  // filter group), and different filters never collide.
  SubscriptionFilter reordered;
  reordered.exact = {"requests", "errors"};
  reordered.prefixes = {"db_", "svc_"};
  reordered.normalize();
  EXPECT_EQ(filter.canonical_key(), reordered.canonical_key());
  SubscriptionFilter other;
  other.exact = {"requests"};
  other.normalize();
  EXPECT_NE(filter.canonical_key(), other.canonical_key());
  // Exact names vs prefixes are distinct subscriptions.
  SubscriptionFilter as_prefix;
  as_prefix.prefixes = {"requests"};
  EXPECT_NE(other.canonical_key(), as_prefix.canonical_key());
}

TEST(ControlFrame, SubscribeRoundTrip) {
  SubscriptionFilter filter;
  filter.exact = {"zeta", "alpha"};
  filter.prefixes = {"svc_"};
  std::string record;
  ASSERT_TRUE(encode_subscribe_record(filter, record));
  ASSERT_GT(record.size(), kControlPrefixBytes);
  EXPECT_EQ(static_cast<unsigned char>(record[0]), kControlByte);

  ControlFrame decoded;
  ASSERT_TRUE(decode_control_payload(control_payload_of(record), decoded));
  EXPECT_EQ(decoded.kind, FrameKind::kSubscribe);
  ASSERT_EQ(decoded.filter.exact.size(), 2u);
  EXPECT_EQ(decoded.filter.exact[0], "alpha");  // normalized on decode
  EXPECT_EQ(decoded.filter.exact[1], "zeta");
  ASSERT_EQ(decoded.filter.prefixes.size(), 1u);
  EXPECT_EQ(decoded.filter.prefixes[0], "svc_");

  // An empty filter (pass-all, "v1 mode again") round-trips too.
  std::string empty_record;
  ASSERT_TRUE(encode_subscribe_record(SubscriptionFilter{}, empty_record));
  ControlFrame empty_decoded;
  ASSERT_TRUE(
      decode_control_payload(control_payload_of(empty_record), empty_decoded));
  EXPECT_TRUE(empty_decoded.filter.pass_all());
}

TEST(ControlFrame, ResyncRoundTrip) {
  std::string record;
  encode_resync_record(record);
  ControlFrame decoded;
  ASSERT_TRUE(decode_control_payload(control_payload_of(record), decoded));
  EXPECT_EQ(decoded.kind, FrameKind::kResync);
  // A resync smuggling a body is malformed.
  std::string padded(control_payload_of(record));
  padded.push_back('\0');
  EXPECT_FALSE(decode_control_payload(padded, decoded));
}

TEST(ControlFrame, TruncationRejectedAtEveryLength) {
  SubscriptionFilter filter;
  filter.exact = {"alpha", "beta"};
  filter.prefixes = {"svc_", "db_"};
  std::string record;
  ASSERT_TRUE(encode_subscribe_record(filter, record));
  const std::string payload(control_payload_of(record));
  ControlFrame decoded;
  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(decode_control_payload(payload.substr(0, len), decoded))
        << "accepted a control payload truncated to " << len << " bytes";
  }
  // And the pristine payload still decodes.
  EXPECT_TRUE(decode_control_payload(payload, decoded));
}

TEST(ControlFrame, ByteFlipFuzzNeverAcceptsOverLimitFilters) {
  SubscriptionFilter filter;
  filter.exact = {"alpha", "a_rather_longer_counter_name"};
  filter.prefixes = {"svc_"};
  std::string record;
  ASSERT_TRUE(encode_subscribe_record(filter, record));
  const std::string payload(control_payload_of(record));
  for (std::size_t i = 0; i < payload.size(); ++i) {
    for (const unsigned char flip : {0x01, 0x80, 0xFF}) {
      std::string mutated = payload;
      mutated[i] = static_cast<char>(mutated[i] ^ flip);
      ControlFrame decoded;
      // Any outcome but a crash/overflow is fine; whatever decodes must
      // be a filter the limits admit (ASan/UBSan guard the memory side).
      if (decode_control_payload(mutated, decoded)) {
        EXPECT_TRUE(decoded.filter.within_limits());
      }
    }
  }
}

TEST(ControlFrame, MalformedFilterListsRejected) {
  // Hand-assembled SUBSCRIBE payloads around the hardening limits.
  auto subscribe_header = [] {
    std::string payload;
    payload.push_back(static_cast<char>(kWireMagic0));
    payload.push_back(static_cast<char>(kWireMagic1));
    payload.push_back(static_cast<char>(kControlVersion));
    payload.push_back(static_cast<char>(FrameKind::kSubscribe));
    return payload;
  };
  ControlFrame decoded;

  // Entry count beyond the limit: rejected before any allocation.
  std::string too_many = subscribe_header();
  append_uvarint(too_many, kMaxFilterEntries + 1);
  EXPECT_FALSE(decode_control_payload(too_many, decoded));

  // Oversized prefix length: rejected.
  std::string oversized = subscribe_header();
  append_uvarint(oversized, 0);  // no exact names
  append_uvarint(oversized, 1);  // one prefix...
  append_uvarint(oversized, kMaxFilterNameBytes + 1);  // ...too long
  oversized.append(kMaxFilterNameBytes + 1, 'x');
  EXPECT_FALSE(decode_control_payload(oversized, decoded));

  // A name length claiming more bytes than the payload holds.
  std::string lying = subscribe_header();
  append_uvarint(lying, 1);
  append_uvarint(lying, 200);
  lying.append(3, 'x');  // only 3 bytes present
  EXPECT_FALSE(decode_control_payload(lying, decoded));

  // Trailing garbage after a well-formed filter.
  SubscriptionFilter filter;
  filter.exact = {"ok"};
  std::string record;
  ASSERT_TRUE(encode_subscribe_record(filter, record));
  std::string trailing(control_payload_of(record));
  trailing.push_back('\0');
  EXPECT_FALSE(decode_control_payload(trailing, decoded));

  // Wrong header version (control frames are v2) and a data kind in a
  // control payload.
  std::string v1_header = subscribe_header();
  v1_header[2] = 0x01;
  append_uvarint(v1_header, 0);
  append_uvarint(v1_header, 0);
  EXPECT_FALSE(decode_control_payload(v1_header, decoded));
  std::string data_kind = subscribe_header();
  data_kind[3] = static_cast<char>(FrameKind::kFull);
  EXPECT_FALSE(decode_control_payload(data_kind, decoded));

  // Encoding refuses an over-limit filter outright.
  SubscriptionFilter huge;
  huge.exact.assign(kMaxFilterEntries + 1, "name");
  std::string refused;
  EXPECT_FALSE(encode_subscribe_record(huge, refused));
  SubscriptionFilter long_name;
  long_name.prefixes = {std::string(kMaxFilterNameBytes + 1, 'p')};
  EXPECT_FALSE(encode_subscribe_record(long_name, refused));
}

TEST(ControlFrame, DataStreamRejectsControlKinds) {
  // A SUBSCRIBE/RESYNC payload arriving where data frames live (the
  // server→client direction) must be kCorrupt, not misapplied — and a
  // v2 version byte on a DATA frame is equally corrupt (the v1 data
  // layout is frozen; see wire.hpp).
  std::string record;
  encode_resync_record(record);
  MaterializedView view;
  EXPECT_EQ(view.apply(control_payload_of(record)), ApplyResult::kCorrupt);

  const TelemetryFrame frame = synthetic_frame(3, 9);
  std::string wire;
  encode_full_frame(frame, 0, wire);
  std::string v2_data(payload_of(wire));
  v2_data[2] = 0x02;  // version byte
  EXPECT_EQ(view.apply(v2_data), ApplyResult::kCorrupt);
}

TEST(WireFiltered, FilteredFullDefinesSubsetTableAndSubsetDeltasApply) {
  // A filtered full carries only the selection, in table order — the
  // subscriber's whole name table. Deltas for the subset then index
  // into it positionally.
  const TelemetryFrame frame = synthetic_frame(5, 11);
  const std::vector<std::uint64_t> selection = {1, 4, 7};
  std::string wire;
  encode_full_frame_filtered(frame, selection, 777, wire);
  EXPECT_EQ(prefix_of(wire), wire.size() - kFramePrefixBytes);

  MaterializedView view;
  view.expect_rebase();
  EXPECT_TRUE(view.rebase_pending());
  ASSERT_EQ(view.apply(payload_of(wire)), ApplyResult::kApplied);
  EXPECT_FALSE(view.rebase_pending());  // the re-basing full arrived
  ASSERT_EQ(view.samples().size(), selection.size());
  for (std::size_t j = 0; j < selection.size(); ++j) {
    const Sample& expected = frame.samples[selection[j]];
    EXPECT_EQ(view.samples()[j].name, expected.name) << j;
    EXPECT_EQ(view.samples()[j].model, expected.model) << j;
    EXPECT_EQ(view.samples()[j].error_bound, expected.error_bound) << j;
    EXPECT_EQ(view.samples()[j].value, expected.value) << j;
  }
  EXPECT_EQ(view.last_collect_ns(), 777u);

  // Subset delta: position 0 = flat 1, position 2 = flat 7.
  std::string delta;
  encode_delta_frame(6, 11, 0, 5, {{0, 1234}, {2, 4321}}, delta);
  ASSERT_EQ(view.apply(payload_of(delta)), ApplyResult::kApplied);
  EXPECT_EQ(view.samples()[0].value, 1234u);
  EXPECT_EQ(view.samples()[1].value, frame.samples[4].value);  // untouched
  EXPECT_EQ(view.samples()[2].value, 4321u);
  // An index beyond the subset table is corrupt, exactly as unfiltered.
  std::string beyond;
  encode_delta_frame(7, 11, 0, 6, {{selection.size(), 1}}, beyond);
  EXPECT_EQ(view.apply(payload_of(beyond)), ApplyResult::kCorrupt);
}

TEST(WireIntegration, DeltaOnTopOfFullEqualsSnapshotAll) {
  // The satellite contract: a view reconstructed from full + registry
  // for_each_changed_since deltas equals a direct snapshot_all of the
  // quiesced fleet.
  shard::RegistryT<base::DirectBackend> registry(2);
  auto& mult = registry.create(
      "mult", {ErrorModel::kMultiplicative, 2, 2, shard::ShardPolicy::kHashPinned});
  auto& add = registry.create(
      "add", {ErrorModel::kAdditive, 8, 2, shard::ShardPolicy::kHashPinned});
  auto& exact = registry.create(
      "exact", {ErrorModel::kExact, 0, 1, shard::ShardPolicy::kHashPinned});
  for (int i = 0; i < 300; ++i) mult.increment(0);
  for (int i = 0; i < 200; ++i) add.increment(0);
  for (int i = 0; i < 100; ++i) exact.increment(0);

  shard::AggregatorT<base::DirectBackend> aggregator(registry, 1,
                                                     /*sequenced=*/true);
  const TelemetryFrame full = aggregator.collect();
  std::string wire;
  encode_full_frame(full, 0, wire);
  MaterializedView view;
  ASSERT_EQ(view.apply(payload_of(wire)), ApplyResult::kApplied);

  for (int i = 0; i < 50; ++i) exact.increment(0);
  for (int i = 0; i < 500; ++i) mult.increment(0);
  const TelemetryFrame next = aggregator.collect();

  std::vector<DeltaEntry> entries;
  const auto upto = registry.for_each_changed_since(
      full.sequence, next.registry_version,
      [&](std::size_t index, const std::string& /*name*/,
          std::uint64_t value, std::uint64_t changed_seq,
          const std::vector<std::uint64_t>* /*counts*/) {
        ASSERT_LE(changed_seq, next.sequence);
        entries.push_back({index, value});
      });
  ASSERT_TRUE(upto.has_value());
  EXPECT_EQ(*upto, next.sequence);
  std::string delta;
  encode_delta_frame(*upto, next.registry_version, 0, full.sequence,
                     entries, delta);
  ASSERT_EQ(view.apply(payload_of(delta)), ApplyResult::kApplied);

  // The reconstructed view IS the registry's snapshot_all (fleet is
  // quiescent, so fresh reads reproduce the collected values).
  const std::vector<Sample> direct = registry.snapshot_all(1);
  ASSERT_EQ(view.samples().size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(view.samples()[i].name, direct[i].name) << i;
    EXPECT_EQ(view.samples()[i].value, direct[i].value) << i;
    EXPECT_EQ(view.samples()[i].model, direct[i].model) << i;
    EXPECT_EQ(view.samples()[i].error_bound, direct[i].error_bound) << i;
  }
}

}  // namespace
}  // namespace approx::svc
