// Tests for the snapshot server + client (src/svc/server.hpp,
// src/svc/client.hpp): real loopback sockets, real threads
// (DirectBackend — the server's collector and I/O workers live outside
// any sim scheduler, like AggregatorT's background mode).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "base/backend.hpp"
#include "shard/registry.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"

namespace approx::svc {
namespace {

using namespace std::chrono_literals;
using shard::ErrorModel;

/// Generous per-frame wait: CI sanitizer builds are slow.
constexpr auto kFrameTimeout = 5s;

/// Polls until the named counter's decoded value reaches `expected`
/// (exact counters only). False on timeout.
bool await_value(TelemetryClient& client, const std::string& name,
                 std::uint64_t expected, int max_frames = 400) {
  for (int i = 0; i < max_frames; ++i) {
    if (!client.poll_frame(kFrameTimeout)) return false;
    for (const shard::Sample& sample : client.view().samples()) {
      if (sample.name == name && sample.value >= expected) return true;
    }
  }
  return false;
}

TEST(SnapshotServer, StartStopIdempotentAndPortAssigned) {
  shard::RegistryT<base::DirectBackend> registry(2);
  registry.create("c", {ErrorModel::kExact, 0, 1});
  SnapshotServer server(registry, 1);
  ASSERT_TRUE(server.start());
  EXPECT_NE(server.port(), 0);
  EXPECT_TRUE(server.start());  // already running: no-op success
  const std::uint16_t port = server.port();
  // A second server on the same explicit port must fail cleanly...
  ServerOptions clash;
  clash.port = port;
  shard::RegistryT<base::DirectBackend> other(2);
  SnapshotServerT<base::DirectBackend> loser(other, 1, clash);
  EXPECT_FALSE(loser.start());
  server.stop();
  server.stop();  // idempotent
  // ...and succeed once the port is free again (SO_REUSEADDR).
  EXPECT_TRUE(loser.start());
  loser.stop();
}

TEST(SnapshotServer, SubscriberSeesFullThenDeltasAndLiveValues) {
  shard::RegistryT<base::DirectBackend> registry(4);
  shard::AnyCounter& hits = registry.create("hits", {ErrorModel::kExact, 0, 2});
  shard::AnyCounter& rate =
      registry.create("rate", {ErrorModel::kMultiplicative, 2, 2});
  for (int i = 0; i < 42; ++i) hits.increment(0);
  for (int i = 0; i < 10; ++i) rate.increment(0);

  ServerOptions options;
  options.period = 5ms;
  SnapshotServer server(registry, 3, options);
  ASSERT_TRUE(server.start());

  TelemetryClient client;
  ASSERT_TRUE(client.connect(server.port()));
  ASSERT_TRUE(client.poll_frame(kFrameTimeout));
  // First frame is always a full: complete self-describing name table.
  EXPECT_EQ(client.view().full_frames(), 1u);
  ASSERT_EQ(client.view().samples().size(), 2u);
  EXPECT_EQ(client.view().samples()[0].name, "hits");
  EXPECT_EQ(client.view().samples()[0].value, 42u);
  EXPECT_EQ(client.view().samples()[0].model, ErrorModel::kExact);
  EXPECT_EQ(client.view().samples()[1].name, "rate");
  EXPECT_EQ(client.view().samples()[1].model, ErrorModel::kMultiplicative);
  EXPECT_EQ(client.view().samples()[1].error_bound, 2u);

  // Live increments flow through; steady-state frames arrive as deltas.
  for (int i = 0; i < 8; ++i) hits.increment(1);
  EXPECT_TRUE(await_value(client, "hits", 50));
  EXPECT_GE(client.view().delta_frames(), 1u);
  EXPECT_GT(client.view().sequence(), 1u);
  EXPECT_GT(client.last_latency_ns(), 0u);

  server.stop();
  // Server shutdown surfaces as a clean disconnect, not a hang.
  while (client.poll_frame(100ms)) {
  }
  EXPECT_FALSE(client.connected());
}

TEST(SnapshotServer, UnchangedFleetStreamsEmptyDeltaHeartbeats) {
  shard::RegistryT<base::DirectBackend> registry(2);
  shard::AnyCounter& c = registry.create("c", {ErrorModel::kExact, 0, 1});
  c.increment(0);
  ServerOptions options;
  options.period = 5ms;
  SnapshotServer server(registry, 1, options);
  ASSERT_TRUE(server.start());

  TelemetryClient client;
  ASSERT_TRUE(client.connect(server.port()));
  ASSERT_TRUE(client.poll_frame(kFrameTimeout));  // the full
  const std::uint64_t entries_after_full = client.view().entries_updated();
  const std::uint64_t seq_after_full = client.view().sequence();
  // Nobody increments: further frames advance the sequence (the
  // liveness heartbeat) without carrying a single entry.
  ASSERT_TRUE(client.poll_frame(kFrameTimeout));
  ASSERT_TRUE(client.poll_frame(kFrameTimeout));
  EXPECT_GT(client.view().sequence(), seq_after_full);
  EXPECT_GE(client.view().delta_frames(), 2u);
  EXPECT_EQ(client.view().entries_updated(), entries_after_full);
  server.stop();
}

TEST(SnapshotServer, RegistryGrowthForcesAFreshFullFrame) {
  shard::RegistryT<base::DirectBackend> registry(2);
  registry.create("first", {ErrorModel::kExact, 0, 1});
  ServerOptions options;
  options.period = 5ms;
  SnapshotServer server(registry, 1, options);
  ASSERT_TRUE(server.start());

  TelemetryClient client;
  ASSERT_TRUE(client.connect(server.port()));
  ASSERT_TRUE(client.poll_frame(kFrameTimeout));
  ASSERT_EQ(client.view().samples().size(), 1u);
  const std::uint64_t version_before = client.view().registry_version();

  registry.create("second", {ErrorModel::kAdditive, 8, 2});
  for (int i = 0; i < 200 && client.view().samples().size() < 2; ++i) {
    ASSERT_TRUE(client.poll_frame(kFrameTimeout));
  }
  ASSERT_EQ(client.view().samples().size(), 2u);
  EXPECT_NE(client.view().registry_version(), version_before);
  EXPECT_GE(client.view().full_frames(), 2u);  // table change ⇒ new full
  EXPECT_EQ(client.view().samples()[1].name, "second");
  EXPECT_EQ(client.view().samples()[1].error_bound, 16u);  // S·k composed
  server.stop();
}

TEST(SnapshotServer, SixtyFourConcurrentSubscribersAllProgress) {
  // The acceptance bar: ≥ 64 concurrent subscribers, nobody dropped.
  constexpr unsigned kSubscribers = 64;
  constexpr int kFramesEach = 3;
  shard::RegistryT<base::DirectBackend> registry(4);
  shard::AnyCounter& load =
      registry.create("load", {ErrorModel::kExact, 0, 2});
  ServerOptions options;
  options.period = 10ms;
  options.io_threads = 4;
  SnapshotServer server(registry, 3, options);
  ASSERT_TRUE(server.start());

  std::atomic<bool> stop{false};
  std::thread incrementer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      load.increment(0);
      std::this_thread::sleep_for(1ms);
    }
  });

  std::atomic<unsigned> happy{0};
  std::vector<std::thread> subscribers;
  for (unsigned i = 0; i < kSubscribers; ++i) {
    subscribers.emplace_back([&] {
      TelemetryClient client;
      if (!client.connect(server.port())) return;
      for (int f = 0; f < kFramesEach; ++f) {
        if (!client.poll_frame(kFrameTimeout)) return;
      }
      if (client.connected() && !client.view().samples().empty() &&
          client.view().sequence() > 0) {
        happy.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : subscribers) t.join();
  stop.store(true, std::memory_order_release);
  incrementer.join();

  EXPECT_EQ(happy.load(), kSubscribers) << "a subscriber stalled or dropped";
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.clients_accepted, kSubscribers);
  // Nobody was dropped by the server mid-test: every close so far was
  // client-initiated after its frames (≤ kSubscribers), never a forced
  // disconnect that would strand a reader before its 3 frames.
  EXPECT_GE(stats.full_frames_sent, static_cast<std::uint64_t>(kSubscribers));
  EXPECT_GT(stats.delta_frames_sent + stats.catchup_deltas_sent, 0u);
  server.stop();
}

TEST(SnapshotServer, SlowReaderIsCoalescedNotDisconnectedNotBuffered) {
  // Backpressure: a subscriber that stops reading while the fleet churns
  // must neither be disconnected nor have every missed frame queued —
  // when it finally drains, it jumps to the newest frame (coalescing).
  // A tiny SO_SNDBUF makes the kernel buffer fill within a few frames.
  shard::RegistryT<base::DirectBackend> registry(2);
  std::vector<shard::AnyCounter*> fleet;
  for (int i = 0; i < 256; ++i) {
    fleet.push_back(&registry.create("counter_" + std::to_string(1000 + i),
                                     {ErrorModel::kExact, 0, 1}));
  }
  ServerOptions options;
  options.period = 2ms;
  options.sndbuf = 4096;  // a frame is 2–5 KB: the pipe jams in a few
  SnapshotServer server(registry, 1, options);
  ASSERT_TRUE(server.start());

  TelemetryClient client;
  // Small receive buffer too: otherwise ~100 frames hide in the
  // client-side kernel buffer and the server never feels backpressure.
  ASSERT_TRUE(client.connect(server.port(), "127.0.0.1", 4096));
  ASSERT_TRUE(client.poll_frame(kFrameTimeout));
  const std::uint64_t seq_before = client.view().sequence();

  // Go quiet for ~100 ticks while every counter changes every tick.
  std::atomic<bool> stop{false};
  std::thread churner([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (shard::AnyCounter* counter : fleet) counter->increment(0);
      std::this_thread::sleep_for(1ms);
    }
  });
  std::this_thread::sleep_for(200ms);

  // Drain: the client must catch up to a recent frame in far fewer
  // frames than elapsed ticks (missed ones were coalesced, not queued).
  std::uint64_t frames_to_catch_up = 0;
  std::uint64_t newest = seq_before;
  for (int i = 0; i < 50; ++i) {
    if (!client.poll_frame(kFrameTimeout)) break;
    ++frames_to_catch_up;
    newest = client.view().sequence();
    const std::uint64_t server_seq = server.stats().frames_collected;
    if (server_seq > 0 && newest + 3 >= server_seq) break;  // caught up
  }
  stop.store(true, std::memory_order_release);
  churner.join();

  EXPECT_TRUE(client.connected()) << "slow reader was disconnected";
  EXPECT_GT(newest, seq_before);
  const ServerStats stats = server.stats();
  EXPECT_GT(stats.frames_coalesced, 0u)
      << "server queued every frame instead of coalescing";
  EXPECT_GT(newest - seq_before, frames_to_catch_up)
      << "catch-up replayed every missed frame";
  server.stop();
}

TEST(SnapshotServer, AcksFeedObservability) {
  shard::RegistryT<base::DirectBackend> registry(2);
  shard::AnyCounter& c = registry.create("c", {ErrorModel::kExact, 0, 1});
  ServerOptions options;
  options.period = 5ms;
  SnapshotServer server(registry, 1, options);
  ASSERT_TRUE(server.start());
  TelemetryClient client;
  ASSERT_TRUE(client.connect(server.port()));
  for (int i = 0; i < 5; ++i) {
    c.increment(0);
    ASSERT_TRUE(client.poll_frame(kFrameTimeout));
  }
  // Acks travel on their own schedule; wait for the server to see some.
  for (int i = 0; i < 200 && server.stats().acks_received == 0; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  const ServerStats stats = server.stats();
  EXPECT_GT(stats.acks_received, 0u);
  EXPECT_GT(stats.min_acked_seq, 0u);
  EXPECT_LE(stats.min_acked_seq, client.view().sequence());
  server.stop();
}

TEST(SnapshotServer, FilteredSubscriberTracksSubsetLive) {
  // Wire v2: SUBSCRIBE re-bases the stream onto the filter's subset —
  // the view's table becomes exactly the matching counters and live
  // increments keep flowing; switching filters (including back to
  // pass-all) re-bases again.
  shard::RegistryT<base::DirectBackend> registry(4);
  shard::AnyCounter& hot_a =
      registry.create("hot_a", {ErrorModel::kExact, 0, 1});
  registry.create("hot_b", {ErrorModel::kExact, 0, 1});
  registry.create("cold_x", {ErrorModel::kExact, 0, 1});
  registry.create("cold_y", {ErrorModel::kExact, 0, 1});
  ServerOptions options;
  options.period = 5ms;
  SnapshotServer server(registry, 3, options);
  ASSERT_TRUE(server.start());

  std::atomic<bool> stop{false};
  std::thread incrementer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      hot_a.increment(0);
      std::this_thread::sleep_for(1ms);
    }
  });

  TelemetryClient client;
  ASSERT_TRUE(client.connect(server.port()));
  SubscriptionFilter filter;
  filter.prefixes = {"hot_"};
  ASSERT_TRUE(client.subscribe(filter));
  EXPECT_TRUE(client.view().rebase_pending());
  // Pump until the re-basing filtered full lands: table = the subset.
  bool rebased = false;
  for (int i = 0; i < 400 && !rebased; ++i) {
    ASSERT_TRUE(client.poll_frame(kFrameTimeout));
    rebased = !client.view().rebase_pending() &&
              client.view().samples().size() == 2;
  }
  ASSERT_TRUE(rebased);
  EXPECT_EQ(client.view().samples()[0].name, "hot_a");
  EXPECT_EQ(client.view().samples()[1].name, "hot_b");

  // Live values keep flowing through subset deltas.
  const std::uint64_t seen = client.view().samples()[0].value;
  EXPECT_TRUE(await_value(client, "hot_a", seen + 5));
  EXPECT_GE(client.view().delta_frames(), 1u);

  // Back to pass-all: the next full restores the whole table.
  ASSERT_TRUE(client.subscribe(SubscriptionFilter{}));
  for (int i = 0; i < 400 && client.view().samples().size() != 4; ++i) {
    ASSERT_TRUE(client.poll_frame(kFrameTimeout));
  }
  EXPECT_EQ(client.view().samples().size(), 4u);
  stop.store(true, std::memory_order_release);
  incrementer.join();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.subscribes_received, 2u);
  server.stop();
}

TEST(SnapshotServer, IdenticallyFilteredSubscribersShareOneEncodePerTick) {
  // The per-filter-group encode cache: K subscribers with the same
  // filter cost at most ONE filtered delta encode per collector tick
  // (never one per subscriber), while each still receives its own copy.
  constexpr unsigned kSubscribers = 4;
  shard::RegistryT<base::DirectBackend> registry(4);
  shard::AnyCounter& hot =
      registry.create("grp_hot", {ErrorModel::kExact, 0, 1});
  for (int i = 0; i < 16; ++i) {
    registry.create("noise_" + std::to_string(10 + i),
                    {ErrorModel::kExact, 0, 1});
  }
  ServerOptions options;
  options.period = 10ms;
  options.io_threads = 2;
  SnapshotServer server(registry, 3, options);
  ASSERT_TRUE(server.start());

  std::atomic<bool> stop{false};
  std::thread incrementer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      hot.increment(0);
      std::this_thread::sleep_for(1ms);
    }
  });

  std::atomic<unsigned> happy{0};
  std::vector<std::thread> subscribers;
  for (unsigned s = 0; s < kSubscribers; ++s) {
    subscribers.emplace_back([&] {
      TelemetryClient client;
      if (!client.connect(server.port())) return;
      SubscriptionFilter filter;
      filter.prefixes = {"grp_"};
      if (!client.subscribe(filter)) return;
      // Pump until this subscriber has applied 10 subset deltas.
      for (int i = 0; i < 600 && client.view().delta_frames() < 10; ++i) {
        if (!client.poll_frame(kFrameTimeout)) return;
      }
      if (client.view().delta_frames() >= 10 &&
          client.view().samples().size() == 1 &&
          client.view().samples()[0].name == "grp_hot") {
        happy.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : subscribers) t.join();
  stop.store(true, std::memory_order_release);
  incrementer.join();

  EXPECT_EQ(happy.load(), kSubscribers);
  const ServerStats stats = server.stats();
  // The sharing pin: encodes are bounded by ticks (ONE per group per
  // tick), not by subscriber count — while the frames actually handed
  // out exceed the encodes (4 subscribers × ≥10 deltas each).
  EXPECT_LE(stats.filtered_delta_encodes, stats.frames_collected);
  EXPECT_GT(stats.delta_frames_sent, stats.filtered_delta_encodes)
      << "every subscriber paid its own encode: the group cache is dead";
  // Filtered fulls are cached per tick too: 4 identical subscribers
  // re-basing cost well under one encode each... unless they joined on
  // different ticks, which is why this bound is per-tick, not global.
  EXPECT_LE(stats.filtered_full_encodes, stats.frames_collected);
  server.stop();
}

TEST(SnapshotServer, ResyncProducesFreshFullWithinATick) {
  // Client-initiated recovery: after a stall (server coalescing away
  // missed ticks), request_resync() yields a fresh FULL frame promptly
  // — no registry table change required, no reconnect.
  shard::RegistryT<base::DirectBackend> registry(4);
  shard::AnyCounter& churn =
      registry.create("churn", {ErrorModel::kExact, 0, 1});
  registry.create("steady", {ErrorModel::kExact, 0, 1});
  ServerOptions options;
  options.period = 5ms;
  SnapshotServer server(registry, 3, options);
  ASSERT_TRUE(server.start());

  std::atomic<bool> stop{false};
  std::thread incrementer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      churn.increment(0);
      std::this_thread::sleep_for(1ms);
    }
  });

  TelemetryClient client;
  ASSERT_TRUE(client.connect(server.port()));
  ASSERT_TRUE(client.poll_frame(kFrameTimeout));
  ASSERT_TRUE(client.poll_frame(kFrameTimeout));
  const std::uint64_t version_before = client.view().registry_version();

  // Stall: ~40 ticks pass unread, then drain the buffered backlog so
  // the client is back in step (the resync latency bound below is
  // frames-after-resync, not backlog replay).
  std::this_thread::sleep_for(200ms);
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t head = server.stats().frames_collected;
    if (head > 0 && client.view().sequence() + 2 >= head) break;
    ASSERT_TRUE(client.poll_frame(kFrameTimeout));
  }
  const std::uint64_t fulls_before = client.view().full_frames();

  ASSERT_TRUE(client.request_resync());
  EXPECT_TRUE(client.view().rebase_pending());
  // The fresh full must arrive within a few frames (deltas published
  // before the server processes the resync may land first), NOT after a
  // table change — the registry version never moved.
  bool resynced = false;
  int frames_until_full = 0;
  while (frames_until_full < 5 && !resynced) {
    ASSERT_TRUE(client.poll_frame(kFrameTimeout));
    ++frames_until_full;
    resynced = client.view().full_frames() > fulls_before;
  }
  EXPECT_TRUE(resynced) << "no full within " << frames_until_full
                        << " frames of the resync";
  EXPECT_FALSE(client.view().rebase_pending());
  EXPECT_EQ(client.view().registry_version(), version_before)
      << "test bug: the full must not come from a table change";
  // And the full is FRESH: at the server's current head, not a replay.
  const ServerStats stats = server.stats();
  EXPECT_GE(stats.resyncs_received, 1u);
  EXPECT_GE(client.view().sequence() + 3, stats.frames_collected);

  stop.store(true, std::memory_order_release);
  incrementer.join();
  server.stop();
}

TEST(SnapshotServer, OnePercentSubscriberGetsTenfoldFewerDeltaBytes) {
  // The fan-out acceptance bar: on a 48-counter fleet, a 1%-selectivity
  // subscriber (1 counter) must receive ≥ 10× fewer delta bytes than an
  // unfiltered one. The win compounds two effects: subset deltas carry
  // only the subscribed counter, and ticks on which the subset did not
  // move ship nothing (bounded by the heartbeat).
  constexpr int kBulkCounters = 47;  // + the target = the 48 fleet
  shard::RegistryT<base::DirectBackend> registry(4);
  std::vector<shard::AnyCounter*> bulk;
  for (int i = 0; i < kBulkCounters; ++i) {
    bulk.push_back(&registry.create("bulk_" + std::to_string(10 + i),
                                    {ErrorModel::kExact, 0, 1}));
  }
  shard::AnyCounter& target =
      registry.create("quiet_target", {ErrorModel::kExact, 0, 1});
  ServerOptions options;
  options.period = 5ms;
  options.io_threads = 2;
  SnapshotServer server(registry, 3, options);
  ASSERT_TRUE(server.start());

  // Every bulk counter moves every tick; the target moves every ~25 ms
  // (~1 tick in 5).
  std::atomic<bool> stop{false};
  std::thread churner([&] {
    unsigned iteration = 0;
    while (!stop.load(std::memory_order_acquire)) {
      for (shard::AnyCounter* counter : bulk) counter->increment(0);
      if (++iteration % 25 == 0) target.increment(0);
      std::this_thread::sleep_for(1ms);
    }
  });

  std::atomic<bool> done{false};
  std::uint64_t unfiltered_bytes = 0;
  std::uint64_t filtered_bytes = 0;
  std::size_t filtered_table = 0;
  std::thread unfiltered([&] {
    TelemetryClient client;
    if (!client.connect(server.port())) return;
    while (!done.load(std::memory_order_acquire)) {
      client.poll_frame(50ms);
      if (!client.connected()) return;
    }
    unfiltered_bytes = client.delta_frame_bytes();
  });
  std::thread filtered([&] {
    TelemetryClient client;
    if (!client.connect(server.port())) return;
    SubscriptionFilter filter;
    filter.exact = {"quiet_target"};
    if (!client.subscribe(filter)) return;
    while (!done.load(std::memory_order_acquire)) {
      client.poll_frame(50ms);
      if (!client.connected()) return;
    }
    filtered_bytes = client.delta_frame_bytes();
    filtered_table = client.view().samples().size();
  });

  std::this_thread::sleep_for(1500ms);
  done.store(true, std::memory_order_release);
  unfiltered.join();
  filtered.join();
  stop.store(true, std::memory_order_release);
  churner.join();

  EXPECT_EQ(filtered_table, 1u);  // the subscription IS the table
  ASSERT_GT(unfiltered_bytes, 0u);
  ASSERT_GT(filtered_bytes, 0u);  // target moved: deltas did flow
  EXPECT_GE(unfiltered_bytes, 10 * filtered_bytes)
      << "unfiltered " << unfiltered_bytes << " B vs filtered "
      << filtered_bytes << " B";
  EXPECT_GT(server.stats().group_deltas_suppressed, 0u)
      << "quiet subset ticks should ship nothing";
  server.stop();
}

TEST(SnapshotServer, ReconnectWhileSubscribedStartsAFreshView) {
  // A reconnect resets the subscription server-side (new socket = new
  // unfiltered client); the client's view must restart too. If the old
  // subset table survived, the new stream's first full — possibly at
  // the same (registry_version, sequence) the old stream reached —
  // would be stale-skipped, and unfiltered delta indices would misapply
  // against the 2-entry subset table.
  shard::RegistryT<base::DirectBackend> registry(4);
  shard::AnyCounter& hot_a =
      registry.create("hot_a", {ErrorModel::kExact, 0, 1});
  registry.create("hot_b", {ErrorModel::kExact, 0, 1});
  registry.create("cold_x", {ErrorModel::kExact, 0, 1});
  ServerOptions options;
  options.period = 5ms;
  SnapshotServer server(registry, 3, options);
  ASSERT_TRUE(server.start());

  std::atomic<bool> stop{false};
  std::thread incrementer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      hot_a.increment(0);
      std::this_thread::sleep_for(1ms);
    }
  });

  TelemetryClient client;
  ASSERT_TRUE(client.connect(server.port()));
  SubscriptionFilter filter;
  filter.prefixes = {"hot_"};
  ASSERT_TRUE(client.subscribe(filter));
  for (int i = 0; i < 400 && (client.view().rebase_pending() ||
                              client.view().samples().size() != 2);
       ++i) {
    ASSERT_TRUE(client.poll_frame(kFrameTimeout));
  }
  ASSERT_EQ(client.view().samples().size(), 2u);

  // Reconnect immediately (same tick is the dangerous window).
  ASSERT_TRUE(client.connect(server.port()));
  EXPECT_EQ(client.view().sequence(), 0u);  // the view restarted
  ASSERT_TRUE(client.poll_frame(kFrameTimeout));
  // First frame of the new stream is the unfiltered full fleet.
  EXPECT_EQ(client.view().samples().size(), 3u);
  // And the unfiltered delta stream keeps applying cleanly.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.poll_frame(kFrameTimeout));
  }
  EXPECT_TRUE(client.connected());
  EXPECT_EQ(client.view().samples().size(), 3u);

  stop.store(true, std::memory_order_release);
  incrementer.join();
  server.stop();
}

TEST(SnapshotServer, MalformedControlRecordsCloseTheOffender) {
  shard::RegistryT<base::DirectBackend> registry(2);
  registry.create("c", {ErrorModel::kExact, 0, 1});
  ServerOptions options;
  options.period = 5ms;
  SnapshotServer server(registry, 1, options);
  ASSERT_TRUE(server.start());
  TelemetryClient wellbehaved;
  ASSERT_TRUE(wellbehaved.connect(server.port()));
  ASSERT_TRUE(wellbehaved.poll_frame(kFrameTimeout));

  auto raw_connect = [&] {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      return -1;
    }
    return fd;
  };

  // A control record claiming an absurd payload length.
  int liar = raw_connect();
  ASSERT_GE(liar, 0);
  std::string huge;
  huge.push_back(static_cast<char>(kControlByte));
  huge.push_back(static_cast<char>(0xFF));
  huge.push_back(static_cast<char>(0xFF));
  huge.push_back(static_cast<char>(0xFF));
  huge.push_back(static_cast<char>(0x7F));
  ASSERT_GT(::send(liar, huge.data(), huge.size(), 0), 0);
  for (int i = 0; i < 200 && server.stats().clients_closed < 1; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(server.stats().clients_closed, 1u);

  // A correctly-framed control record with a garbage payload.
  int garbler = raw_connect();
  ASSERT_GE(garbler, 0);
  std::string garbage;
  garbage.push_back(static_cast<char>(kControlByte));
  garbage.push_back(4);
  garbage.push_back(0);
  garbage.push_back(0);
  garbage.push_back(0);
  garbage.append("junk");
  ASSERT_GT(::send(garbler, garbage.data(), garbage.size(), 0), 0);
  for (int i = 0; i < 200 && server.stats().clients_closed < 2; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(server.stats().clients_closed, 2u);

  // The compliant subscriber lives on.
  EXPECT_TRUE(wellbehaved.poll_frame(kFrameTimeout));
  ::close(liar);
  ::close(garbler);
  server.stop();
}

TEST(SnapshotServer, GarbageInboundBytesCloseTheOffender) {
  shard::RegistryT<base::DirectBackend> registry(2);
  registry.create("c", {ErrorModel::kExact, 0, 1});
  ServerOptions options;
  options.period = 5ms;
  SnapshotServer server(registry, 1, options);
  ASSERT_TRUE(server.start());
  TelemetryClient wellbehaved;
  ASSERT_TRUE(wellbehaved.connect(server.port()));
  ASSERT_TRUE(wellbehaved.poll_frame(kFrameTimeout));
  // A raw connection speaking the wrong protocol (an HTTP probe, say).
  int raw = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(raw, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(raw, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_GT(::send(raw, garbage, sizeof(garbage) - 1, 0), 0);
  // The server closes the garbage speaker; the compliant ones live on.
  for (int i = 0; i < 200 && server.stats().clients_closed == 0; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(server.stats().clients_closed, 1u);
  EXPECT_TRUE(wellbehaved.poll_frame(kFrameTimeout));
  ::close(raw);
  server.stop();
}

TEST(SnapshotServer, DisjointCreateLeavesFilterGroupStreamUntouched) {
  // Satellite regression: a registry create OUTSIDE a filter group's
  // subset must not interrupt the group — the append-only name-sorted
  // table means an unchanged selection size is an unchanged subset, so
  // the group keeps streaming deltas under its pinned wire version.
  // No re-basing filtered full, no full re-encode, no client rebase.
  shard::RegistryT<base::DirectBackend> registry(4);
  shard::AnyCounter& hot =
      registry.create("grp_hot", {ErrorModel::kExact, 0, 1});
  registry.create("noise_0", {ErrorModel::kExact, 0, 1});
  ServerOptions options;
  options.period = 5ms;
  SnapshotServer server(registry, 3, options);
  ASSERT_TRUE(server.start());

  std::atomic<bool> stop{false};
  std::thread incrementer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      hot.increment(0);
      std::this_thread::sleep_for(1ms);
    }
  });

  TelemetryClient client;
  ASSERT_TRUE(client.connect(server.port()));
  SubscriptionFilter filter;
  filter.prefixes = {"grp_"};
  ASSERT_TRUE(client.subscribe(filter));
  bool rebased = false;
  for (int i = 0; i < 400 && !rebased; ++i) {
    ASSERT_TRUE(client.poll_frame(kFrameTimeout));
    rebased = !client.view().rebase_pending() &&
              client.view().samples().size() == 1;
  }
  ASSERT_TRUE(rebased);
  ASSERT_TRUE(await_value(client, "grp_hot",
                          client.view().samples()[0].value + 5));

  const std::uint64_t fulls_before = client.view().full_frames();
  const std::uint64_t ffe_before = server.stats().filtered_full_encodes;

  // Disjoint creates that sort BEFORE the subset: every flat index in
  // the selection shifts, the registry version bumps — the strongest
  // "nothing visible should happen" case.
  for (int i = 0; i < 3; ++i) {
    registry.create("aaa_disjoint_" + std::to_string(i),
                    {ErrorModel::kExact, 0, 1});
    ASSERT_TRUE(await_value(client, "grp_hot",
                            client.view().samples()[0].value + 3));
  }
  EXPECT_EQ(client.view().full_frames(), fulls_before)
      << "a disjoint create re-based the filter group";
  EXPECT_EQ(client.view().samples().size(), 1u);
  EXPECT_EQ(client.view().samples()[0].name, "grp_hot");
  EXPECT_EQ(server.stats().filtered_full_encodes, ffe_before)
      << "a disjoint create forced a filtered full re-encode";

  // A create INSIDE the subset is the real table change: the group
  // re-bases via a fresh filtered full carrying both names.
  registry.create("grp_new", {ErrorModel::kExact, 0, 1});
  for (int i = 0; i < 400 && client.view().samples().size() != 2; ++i) {
    ASSERT_TRUE(client.poll_frame(kFrameTimeout));
  }
  ASSERT_EQ(client.view().samples().size(), 2u);
  EXPECT_EQ(client.view().samples()[0].name, "grp_hot");
  EXPECT_EQ(client.view().samples()[1].name, "grp_new");
  EXPECT_GT(client.view().full_frames(), fulls_before);
  EXPECT_GT(server.stats().filtered_full_encodes, ffe_before);

  stop.store(true, std::memory_order_release);
  incrementer.join();
  server.stop();
}

TEST(SnapshotServer, IdleSubsetHeartbeatsCarryClockAndStalenessSplit) {
  // Satellite regression: heartbeat deltas carry the server's clock
  // stamp (an idle-subset subscriber's latency stays measured), and the
  // view splits stream freshness (sequence/collect) from data freshness
  // (last_data_*): heartbeats advance the former, only payload frames
  // the latter.
  shard::RegistryT<base::DirectBackend> registry(4);
  shard::AnyCounter& quiet =
      registry.create("quiet_q", {ErrorModel::kExact, 0, 1});
  shard::AnyCounter& busy =
      registry.create("busy_b", {ErrorModel::kExact, 0, 1});
  quiet.increment(0);
  ServerOptions options;
  options.period = 5ms;
  options.group_heartbeat_ticks = 2;
  SnapshotServer server(registry, 3, options);
  ASSERT_TRUE(server.start());

  std::atomic<bool> stop{false};
  std::thread incrementer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      busy.increment(0);  // fleet-wide churn the subset never sees
      std::this_thread::sleep_for(1ms);
    }
  });

  TelemetryClient client;
  ASSERT_TRUE(client.connect(server.port()));
  SubscriptionFilter filter;
  filter.prefixes = {"quiet_"};
  ASSERT_TRUE(client.subscribe(filter));
  bool rebased = false;
  for (int i = 0; i < 400 && !rebased; ++i) {
    ASSERT_TRUE(client.poll_frame(kFrameTimeout));
    rebased = !client.view().rebase_pending() &&
              client.view().samples().size() == 1;
  }
  ASSERT_TRUE(rebased);
  const std::uint64_t data_seq_after_full = client.view().last_data_sequence();
  EXPECT_EQ(data_seq_after_full, client.view().sequence());

  // The subset stays untouched: everything from here is heartbeats.
  const std::uint64_t heartbeats_before = client.view().heartbeat_frames();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.poll_frame(kFrameTimeout));
    // The stamp satellite: a heartbeat is still a measured frame — the
    // subscriber's latency reflects the server's clock, not 0 (and not
    // a stale reading parked since the last payload frame).
    EXPECT_GT(client.last_latency_ns(), 0u);
    EXPECT_LT(client.last_latency_ns(), 2'000'000'000u);
  }
  EXPECT_GE(client.view().heartbeat_frames(), heartbeats_before + 3);
  // Stream freshness advanced; data freshness stayed at the full.
  EXPECT_GT(client.view().sequence(), data_seq_after_full);
  EXPECT_EQ(client.view().last_data_sequence(), data_seq_after_full);
  EXPECT_LE(client.view().last_data_collect_ns(),
            client.view().last_collect_ns());

  // One touch in the subset: the next payload delta moves data
  // freshness forward again.
  quiet.increment(1);
  ASSERT_TRUE(await_value(client, "quiet_q", 2));
  EXPECT_GT(client.view().last_data_sequence(), data_seq_after_full);

  stop.store(true, std::memory_order_release);
  incrementer.join();
  server.stop();
}

TEST(SnapshotServer, FilteredSubscriberIsNeverOfferedTheShmRing) {
  // Satellite regression: the shm ring carries only UNFILTERED frames,
  // whose delta indices would misdecode against a filtered subscriber's
  // subset name table. A filtered subscriber must therefore never be
  // offered the ring — and never end up consuming it — no matter when
  // it asks (per-group rings are the documented upgrade path; see the
  // README transport section).
  shard::RegistryT<base::DirectBackend> registry(4);
  shard::AnyCounter& hot_a =
      registry.create("hot_a", {ErrorModel::kExact, 0, 1});
  registry.create("cold_x", {ErrorModel::kExact, 0, 1});
  ServerOptions options;
  options.period = 5ms;
  SnapshotServer server(registry, 3, options);
  ASSERT_TRUE(server.start());

  std::atomic<bool> stop{false};
  std::thread incrementer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      hot_a.increment(0);
      std::this_thread::sleep_for(1ms);
    }
  });

  // An unfiltered control client proves the ring itself is healthy —
  // otherwise "no offer" below would be vacuous (e.g. no /dev/shm).
  TelemetryClient unfiltered;
  ASSERT_TRUE(unfiltered.connect(server.port()));
  ASSERT_TRUE(unfiltered.request_shm());
  bool ring_healthy = false;
  for (int i = 0; i < 200 && !ring_healthy; ++i) {
    if (!unfiltered.poll_frame(kFrameTimeout)) break;
    ring_healthy = unfiltered.shm_active() && unfiltered.shm_frames() >= 1;
  }
  if (!ring_healthy) {
    stop.store(true, std::memory_order_release);
    incrementer.join();
    server.stop();
    GTEST_SKIP() << "no healthy shm ring in this environment";
  }

  TelemetryClient filtered;
  ASSERT_TRUE(filtered.connect(server.port()));
  SubscriptionFilter filter;
  filter.prefixes = {"hot_"};
  ASSERT_TRUE(filtered.subscribe(filter));
  bool rebased = false;
  for (int i = 0; i < 400 && !rebased; ++i) {
    ASSERT_TRUE(filtered.poll_frame(kFrameTimeout));
    rebased = !filtered.view().rebase_pending() &&
              filtered.view().samples().size() == 1;
  }
  ASSERT_TRUE(rebased);

  const std::uint64_t offers_before = server.stats().shm_offers_sent;
  const std::uint64_t requests_before = server.stats().shm_requests_received;
  ASSERT_TRUE(filtered.request_shm());
  // The server must see the request and stay silent: the subscriber
  // keeps streaming filtered TCP frames, never a ring offer.
  for (int i = 0; i < 200 && server.stats().shm_requests_received ==
                                 requests_before;
       ++i) {
    ASSERT_TRUE(filtered.poll_frame(kFrameTimeout));
  }
  ASSERT_GT(server.stats().shm_requests_received, requests_before);
  const std::uint64_t value_seen = filtered.view().samples()[0].value;
  ASSERT_TRUE(await_value(filtered, "hot_a", value_seen + 10));
  EXPECT_EQ(server.stats().shm_offers_sent, offers_before)
      << "a filtered subscriber was offered the unfiltered shm ring";
  EXPECT_FALSE(filtered.shm_active());
  EXPECT_EQ(filtered.shm_frames(), 0u);
  // The filtered table stayed the subset throughout — no unfiltered
  // ring frame widened it behind the subscription's back.
  EXPECT_EQ(filtered.view().samples().size(), 1u);
  EXPECT_EQ(filtered.view().samples()[0].name, "hot_a");

  // The reverse order — riding the ring, THEN subscribing — must demote
  // the client back to per-subscriber TCP frames before the subset
  // stream starts (subscribe() detaches client-side; the server drops
  // shm_consuming when it processes the SUBSCRIBE).
  SubscriptionFilter narrow;
  narrow.prefixes = {"cold_"};
  ASSERT_TRUE(unfiltered.subscribe(narrow));
  rebased = false;
  for (int i = 0; i < 400 && !rebased; ++i) {
    ASSERT_TRUE(unfiltered.poll_frame(kFrameTimeout));
    rebased = !unfiltered.view().rebase_pending() &&
              unfiltered.view().samples().size() == 1;
  }
  ASSERT_TRUE(rebased);
  EXPECT_FALSE(unfiltered.shm_active());
  EXPECT_EQ(unfiltered.view().samples()[0].name, "cold_x");
  // And a re-request AFTER subscribing is refused like any other.
  const std::uint64_t offers_after = server.stats().shm_offers_sent;
  ASSERT_TRUE(unfiltered.request_shm());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(unfiltered.poll_frame(kFrameTimeout));
  }
  EXPECT_EQ(server.stats().shm_offers_sent, offers_after);
  EXPECT_FALSE(unfiltered.shm_active());

  stop.store(true, std::memory_order_release);
  incrementer.join();
  server.stop();
}

TEST(SnapshotServer, AckStalledPeerIsEvictedWhileLiveReaderStreams) {
  // The satellite-1 regression: a peer that stops reading AND acking (a
  // SIGSTOP'd client, a half-open TCP session) used to hold its socket
  // — and whatever retired shared-encode frame it pinned — forever,
  // because acks fed only min_acked_seq observability. With
  // ack_deadline_ticks set it must be closed within the deadline, its
  // pinned in-flight frame must drain, and a live acking reader on the
  // same server must not be touched.
  shard::RegistryT<base::DirectBackend> registry(4);
  shard::AnyCounter& c = registry.create("c", {ErrorModel::kExact, 0, 2});
  c.increment(0);
  ServerOptions options;
  options.period = 2ms;
  options.ack_deadline_ticks = 25;  // ~50 ms of stall tolerated
  options.shm_enable = false;       // the live reader must ack over TCP
  options.sndbuf = 2048;  // small: the stalled peer jams and pins a frame
  SnapshotServer server(registry, 3, options);
  ASSERT_TRUE(server.start());

  // The stalled peer: connects, never reads, never acks. A tiny
  // receive buffer makes its kernel pipe jam within a few frames, so
  // the server is left holding an undrained in-flight encode for it.
  const int stalled = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(stalled, 0);
  int tiny = 1024;
  ::setsockopt(stalled, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(stalled, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  TelemetryClient live;
  ASSERT_TRUE(live.connect(server.port()));
  ASSERT_TRUE(live.poll_frame(kFrameTimeout));

  // Keep the fleet changing so frames (and the tick clock) flow; the
  // real-time budget is generous for sanitizer builds, the TICK budget
  // the server enforces is the deadline.
  bool evicted = false;
  for (int i = 0; i < 500 && !evicted; ++i) {
    c.increment(0);
    live.poll_frame(20ms);
    evicted = server.stats().clients_evicted_idle >= 1;
  }
  EXPECT_TRUE(evicted) << "stalled peer was never evicted";

  // The eviction released the pinned encode: the fleet-wide in-flight
  // gauge drains to zero (the live reader drains its own instantly).
  bool drained = false;
  for (int i = 0; i < 200 && !drained; ++i) {
    live.poll_frame(20ms);
    drained = server.stats().frames_in_flight == 0;
  }
  EXPECT_TRUE(drained) << "in-flight encode stayed pinned after eviction";

  // The live, acking reader was untouched and still advances.
  const std::uint64_t seq_before = live.view().sequence();
  c.increment(0);
  ASSERT_TRUE(live.poll_frame(kFrameTimeout));
  EXPECT_GT(live.view().sequence(), seq_before);
  EXPECT_TRUE(live.connected());
  EXPECT_EQ(server.stats().clients_evicted_idle, 1u);
  ::close(stalled);
  server.stop();
}

TEST(SnapshotServer, EvictionDisabledKeepsStalledPeerOpen) {
  // ack_deadline_ticks = 0 restores the old contract: nobody is
  // disconnected for being slow (or even dead-quiet).
  shard::RegistryT<base::DirectBackend> registry(2);
  shard::AnyCounter& c = registry.create("c", {ErrorModel::kExact, 0, 1});
  ServerOptions options;
  options.period = 2ms;
  options.ack_deadline_ticks = 0;
  options.shm_enable = false;
  SnapshotServer server(registry, 1, options);
  ASSERT_TRUE(server.start());

  const int stalled = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(stalled, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(stalled, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  // Stall for far longer than the other test's deadline.
  for (int i = 0; i < 100; ++i) {
    c.increment(0);
    std::this_thread::sleep_for(2ms);
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.clients_evicted_idle, 0u);
  EXPECT_EQ(stats.clients_closed, 0u);
  ::close(stalled);
  server.stop();
}

TEST(SnapshotServer, GroupChurnWithSixtyFourStreamersResolvesCleanly) {
  // The RCU group-table pin: 64 streaming clients re-subscribe across
  // four filter families mid-stream, so groups are created, shared,
  // and erased concurrently with every I/O worker resolving
  // client→group lock-free under an epoch guard. A torn resolution
  // (a worker reading a half-built group, a freed selection, or a
  // stale tick after rebase) would surface as an off-subset sample in
  // a settled view; the epoch domain must also let every retired
  // table and tick drain, which the in-flight gauge checks at the end.
  constexpr unsigned kSubscribers = 64;
  constexpr int kRounds = 3;
  constexpr int kFramesPerRound = 5;
  constexpr int kFamilies = 4;
  shard::RegistryT<base::DirectBackend> registry(4);
  std::vector<shard::AnyCounter*> hot;
  for (int g = 0; g < kFamilies; ++g) {
    for (int c = 0; c < 2; ++c) {
      shard::AnyCounter& counter =
          registry.create("grp" + std::to_string(g) + "_c" + std::to_string(c),
                          {ErrorModel::kExact, 0, 2});
      if (c == 0) hot.push_back(&counter);
    }
  }
  ServerOptions options;
  options.period = 5ms;
  options.io_threads = 4;
  SnapshotServer server(registry, 3, options);
  ASSERT_TRUE(server.start());

  std::atomic<bool> stop{false};
  std::thread incrementer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (shard::AnyCounter* counter : hot) counter->increment(0);
      std::this_thread::sleep_for(1ms);
    }
  });

  std::atomic<unsigned> happy{0};
  std::atomic<bool> torn{false};
  std::vector<std::thread> subscribers;
  for (unsigned i = 0; i < kSubscribers; ++i) {
    subscribers.emplace_back([&, i] {
      TelemetryClient client;
      if (!client.connect(server.port())) return;
      for (int round = 0; round < kRounds; ++round) {
        const std::string prefix =
            "grp" + std::to_string((i + round) % kFamilies) + "_";
        SubscriptionFilter filter;
        filter.prefixes = {prefix};
        if (!client.subscribe(filter)) return;
        auto pure = [&] {
          for (const shard::Sample& sample : client.view().samples()) {
            if (!sample.name.starts_with(prefix)) return false;
          }
          return true;
        };
        // Phase 1: pump until the re-basing full for THIS filter lands
        // (a stale pre-subscribe full may clear the pending flag with
        // the old subset — that is ordering, not tearing).
        bool rebased = false;
        for (int p = 0; p < 600 && !rebased; ++p) {
          if (!client.poll_frame(kFrameTimeout)) return;
          rebased = !client.view().rebase_pending() &&
                    client.view().samples().size() == 2 && pure();
        }
        if (!rebased) return;
        // Phase 2: once settled on the subset, EVERY subsequent frame
        // must stay on it — an off-subset sample here is a torn
        // resolution in the lock-free worker path.
        for (int f = 0; f < kFramesPerRound; ++f) {
          if (!client.poll_frame(kFrameTimeout)) return;
          if (!pure() || client.view().samples().size() != 2) {
            torn.store(true, std::memory_order_relaxed);
            return;
          }
        }
      }
      if (client.connected()) happy.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (std::thread& t : subscribers) t.join();
  stop.store(true, std::memory_order_release);
  incrementer.join();

  EXPECT_FALSE(torn.load()) << "a settled subscriber saw an off-subset frame";
  EXPECT_EQ(happy.load(), kSubscribers) << "a subscriber stalled or dropped";
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.subscribes_received,
            static_cast<std::uint64_t>(kSubscribers) * kRounds);

  // Every client is gone; the one-in-flight refcounts they pinned must
  // drain to zero (the collector keeps ticking, which is what notices
  // the closed sockets and releases their frames).
  bool drained = false;
  for (int i = 0; i < 400 && !drained; ++i) {
    std::this_thread::sleep_for(5ms);
    drained = server.stats().frames_in_flight == 0;
  }
  EXPECT_TRUE(drained) << "in-flight frames leaked after group churn";
  server.stop();
}

}  // namespace
}  // namespace approx::svc
