// Tests for the snapshot server + client (src/svc/server.hpp,
// src/svc/client.hpp): real loopback sockets, real threads
// (DirectBackend — the server's collector and I/O workers live outside
// any sim scheduler, like AggregatorT's background mode).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "base/backend.hpp"
#include "shard/registry.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"

namespace approx::svc {
namespace {

using namespace std::chrono_literals;
using shard::ErrorModel;

/// Generous per-frame wait: CI sanitizer builds are slow.
constexpr auto kFrameTimeout = 5s;

/// Polls until the named counter's decoded value reaches `expected`
/// (exact counters only). False on timeout.
bool await_value(TelemetryClient& client, const std::string& name,
                 std::uint64_t expected, int max_frames = 400) {
  for (int i = 0; i < max_frames; ++i) {
    if (!client.poll_frame(kFrameTimeout)) return false;
    for (const shard::Sample& sample : client.view().samples()) {
      if (sample.name == name && sample.value >= expected) return true;
    }
  }
  return false;
}

TEST(SnapshotServer, StartStopIdempotentAndPortAssigned) {
  shard::RegistryT<base::DirectBackend> registry(2);
  registry.create("c", {ErrorModel::kExact, 0, 1});
  SnapshotServer server(registry, 1);
  ASSERT_TRUE(server.start());
  EXPECT_NE(server.port(), 0);
  EXPECT_TRUE(server.start());  // already running: no-op success
  const std::uint16_t port = server.port();
  // A second server on the same explicit port must fail cleanly...
  ServerOptions clash;
  clash.port = port;
  shard::RegistryT<base::DirectBackend> other(2);
  SnapshotServerT<base::DirectBackend> loser(other, 1, clash);
  EXPECT_FALSE(loser.start());
  server.stop();
  server.stop();  // idempotent
  // ...and succeed once the port is free again (SO_REUSEADDR).
  EXPECT_TRUE(loser.start());
  loser.stop();
}

TEST(SnapshotServer, SubscriberSeesFullThenDeltasAndLiveValues) {
  shard::RegistryT<base::DirectBackend> registry(4);
  shard::AnyCounter& hits = registry.create("hits", {ErrorModel::kExact, 0, 2});
  shard::AnyCounter& rate =
      registry.create("rate", {ErrorModel::kMultiplicative, 2, 2});
  for (int i = 0; i < 42; ++i) hits.increment(0);
  for (int i = 0; i < 10; ++i) rate.increment(0);

  ServerOptions options;
  options.period = 5ms;
  SnapshotServer server(registry, 3, options);
  ASSERT_TRUE(server.start());

  TelemetryClient client;
  ASSERT_TRUE(client.connect(server.port()));
  ASSERT_TRUE(client.poll_frame(kFrameTimeout));
  // First frame is always a full: complete self-describing name table.
  EXPECT_EQ(client.view().full_frames(), 1u);
  ASSERT_EQ(client.view().samples().size(), 2u);
  EXPECT_EQ(client.view().samples()[0].name, "hits");
  EXPECT_EQ(client.view().samples()[0].value, 42u);
  EXPECT_EQ(client.view().samples()[0].model, ErrorModel::kExact);
  EXPECT_EQ(client.view().samples()[1].name, "rate");
  EXPECT_EQ(client.view().samples()[1].model, ErrorModel::kMultiplicative);
  EXPECT_EQ(client.view().samples()[1].error_bound, 2u);

  // Live increments flow through; steady-state frames arrive as deltas.
  for (int i = 0; i < 8; ++i) hits.increment(1);
  EXPECT_TRUE(await_value(client, "hits", 50));
  EXPECT_GE(client.view().delta_frames(), 1u);
  EXPECT_GT(client.view().sequence(), 1u);
  EXPECT_GT(client.last_latency_ns(), 0u);

  server.stop();
  // Server shutdown surfaces as a clean disconnect, not a hang.
  while (client.poll_frame(100ms)) {
  }
  EXPECT_FALSE(client.connected());
}

TEST(SnapshotServer, UnchangedFleetStreamsEmptyDeltaHeartbeats) {
  shard::RegistryT<base::DirectBackend> registry(2);
  shard::AnyCounter& c = registry.create("c", {ErrorModel::kExact, 0, 1});
  c.increment(0);
  ServerOptions options;
  options.period = 5ms;
  SnapshotServer server(registry, 1, options);
  ASSERT_TRUE(server.start());

  TelemetryClient client;
  ASSERT_TRUE(client.connect(server.port()));
  ASSERT_TRUE(client.poll_frame(kFrameTimeout));  // the full
  const std::uint64_t entries_after_full = client.view().entries_updated();
  const std::uint64_t seq_after_full = client.view().sequence();
  // Nobody increments: further frames advance the sequence (the
  // liveness heartbeat) without carrying a single entry.
  ASSERT_TRUE(client.poll_frame(kFrameTimeout));
  ASSERT_TRUE(client.poll_frame(kFrameTimeout));
  EXPECT_GT(client.view().sequence(), seq_after_full);
  EXPECT_GE(client.view().delta_frames(), 2u);
  EXPECT_EQ(client.view().entries_updated(), entries_after_full);
  server.stop();
}

TEST(SnapshotServer, RegistryGrowthForcesAFreshFullFrame) {
  shard::RegistryT<base::DirectBackend> registry(2);
  registry.create("first", {ErrorModel::kExact, 0, 1});
  ServerOptions options;
  options.period = 5ms;
  SnapshotServer server(registry, 1, options);
  ASSERT_TRUE(server.start());

  TelemetryClient client;
  ASSERT_TRUE(client.connect(server.port()));
  ASSERT_TRUE(client.poll_frame(kFrameTimeout));
  ASSERT_EQ(client.view().samples().size(), 1u);
  const std::uint64_t version_before = client.view().registry_version();

  registry.create("second", {ErrorModel::kAdditive, 8, 2});
  for (int i = 0; i < 200 && client.view().samples().size() < 2; ++i) {
    ASSERT_TRUE(client.poll_frame(kFrameTimeout));
  }
  ASSERT_EQ(client.view().samples().size(), 2u);
  EXPECT_NE(client.view().registry_version(), version_before);
  EXPECT_GE(client.view().full_frames(), 2u);  // table change ⇒ new full
  EXPECT_EQ(client.view().samples()[1].name, "second");
  EXPECT_EQ(client.view().samples()[1].error_bound, 16u);  // S·k composed
  server.stop();
}

TEST(SnapshotServer, SixtyFourConcurrentSubscribersAllProgress) {
  // The acceptance bar: ≥ 64 concurrent subscribers, nobody dropped.
  constexpr unsigned kSubscribers = 64;
  constexpr int kFramesEach = 3;
  shard::RegistryT<base::DirectBackend> registry(4);
  shard::AnyCounter& load =
      registry.create("load", {ErrorModel::kExact, 0, 2});
  ServerOptions options;
  options.period = 10ms;
  options.io_threads = 4;
  SnapshotServer server(registry, 3, options);
  ASSERT_TRUE(server.start());

  std::atomic<bool> stop{false};
  std::thread incrementer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      load.increment(0);
      std::this_thread::sleep_for(1ms);
    }
  });

  std::atomic<unsigned> happy{0};
  std::vector<std::thread> subscribers;
  for (unsigned i = 0; i < kSubscribers; ++i) {
    subscribers.emplace_back([&] {
      TelemetryClient client;
      if (!client.connect(server.port())) return;
      for (int f = 0; f < kFramesEach; ++f) {
        if (!client.poll_frame(kFrameTimeout)) return;
      }
      if (client.connected() && !client.view().samples().empty() &&
          client.view().sequence() > 0) {
        happy.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : subscribers) t.join();
  stop.store(true, std::memory_order_release);
  incrementer.join();

  EXPECT_EQ(happy.load(), kSubscribers) << "a subscriber stalled or dropped";
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.clients_accepted, kSubscribers);
  // Nobody was dropped by the server mid-test: every close so far was
  // client-initiated after its frames (≤ kSubscribers), never a forced
  // disconnect that would strand a reader before its 3 frames.
  EXPECT_GE(stats.full_frames_sent, static_cast<std::uint64_t>(kSubscribers));
  EXPECT_GT(stats.delta_frames_sent + stats.catchup_deltas_sent, 0u);
  server.stop();
}

TEST(SnapshotServer, SlowReaderIsCoalescedNotDisconnectedNotBuffered) {
  // Backpressure: a subscriber that stops reading while the fleet churns
  // must neither be disconnected nor have every missed frame queued —
  // when it finally drains, it jumps to the newest frame (coalescing).
  // A tiny SO_SNDBUF makes the kernel buffer fill within a few frames.
  shard::RegistryT<base::DirectBackend> registry(2);
  std::vector<shard::AnyCounter*> fleet;
  for (int i = 0; i < 256; ++i) {
    fleet.push_back(&registry.create("counter_" + std::to_string(1000 + i),
                                     {ErrorModel::kExact, 0, 1}));
  }
  ServerOptions options;
  options.period = 2ms;
  options.sndbuf = 4096;  // a frame is 2–5 KB: the pipe jams in a few
  SnapshotServer server(registry, 1, options);
  ASSERT_TRUE(server.start());

  TelemetryClient client;
  // Small receive buffer too: otherwise ~100 frames hide in the
  // client-side kernel buffer and the server never feels backpressure.
  ASSERT_TRUE(client.connect(server.port(), "127.0.0.1", 4096));
  ASSERT_TRUE(client.poll_frame(kFrameTimeout));
  const std::uint64_t seq_before = client.view().sequence();

  // Go quiet for ~100 ticks while every counter changes every tick.
  std::atomic<bool> stop{false};
  std::thread churner([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (shard::AnyCounter* counter : fleet) counter->increment(0);
      std::this_thread::sleep_for(1ms);
    }
  });
  std::this_thread::sleep_for(200ms);

  // Drain: the client must catch up to a recent frame in far fewer
  // frames than elapsed ticks (missed ones were coalesced, not queued).
  std::uint64_t frames_to_catch_up = 0;
  std::uint64_t newest = seq_before;
  for (int i = 0; i < 50; ++i) {
    if (!client.poll_frame(kFrameTimeout)) break;
    ++frames_to_catch_up;
    newest = client.view().sequence();
    const std::uint64_t server_seq = server.stats().frames_collected;
    if (server_seq > 0 && newest + 3 >= server_seq) break;  // caught up
  }
  stop.store(true, std::memory_order_release);
  churner.join();

  EXPECT_TRUE(client.connected()) << "slow reader was disconnected";
  EXPECT_GT(newest, seq_before);
  const ServerStats stats = server.stats();
  EXPECT_GT(stats.frames_coalesced, 0u)
      << "server queued every frame instead of coalescing";
  EXPECT_GT(newest - seq_before, frames_to_catch_up)
      << "catch-up replayed every missed frame";
  server.stop();
}

TEST(SnapshotServer, AcksFeedObservability) {
  shard::RegistryT<base::DirectBackend> registry(2);
  shard::AnyCounter& c = registry.create("c", {ErrorModel::kExact, 0, 1});
  ServerOptions options;
  options.period = 5ms;
  SnapshotServer server(registry, 1, options);
  ASSERT_TRUE(server.start());
  TelemetryClient client;
  ASSERT_TRUE(client.connect(server.port()));
  for (int i = 0; i < 5; ++i) {
    c.increment(0);
    ASSERT_TRUE(client.poll_frame(kFrameTimeout));
  }
  // Acks travel on their own schedule; wait for the server to see some.
  for (int i = 0; i < 200 && server.stats().acks_received == 0; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  const ServerStats stats = server.stats();
  EXPECT_GT(stats.acks_received, 0u);
  EXPECT_GT(stats.min_acked_seq, 0u);
  EXPECT_LE(stats.min_acked_seq, client.view().sequence());
  server.stop();
}

TEST(SnapshotServer, GarbageInboundBytesCloseTheOffender) {
  shard::RegistryT<base::DirectBackend> registry(2);
  registry.create("c", {ErrorModel::kExact, 0, 1});
  ServerOptions options;
  options.period = 5ms;
  SnapshotServer server(registry, 1, options);
  ASSERT_TRUE(server.start());
  TelemetryClient wellbehaved;
  ASSERT_TRUE(wellbehaved.connect(server.port()));
  ASSERT_TRUE(wellbehaved.poll_frame(kFrameTimeout));
  // A raw connection speaking the wrong protocol (an HTTP probe, say).
  int raw = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(raw, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(raw, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_GT(::send(raw, garbage, sizeof(garbage) - 1, 0), 0);
  // The server closes the garbage speaker; the compliant ones live on.
  for (int i = 0; i < 200 && server.stats().clients_closed == 0; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(server.stats().clients_closed, 1u);
  EXPECT_TRUE(wellbehaved.poll_frame(kFrameTimeout));
  ::close(raw);
  server.stop();
}

}  // namespace
}  // namespace approx::svc
