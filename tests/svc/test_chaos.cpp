// Chaos suite: the resilience ladder under deterministic fault
// injection. A real SnapshotServer streams through FaultProxy
// (tests/svc/fault_proxy.hpp) — or gets killed and restarted outright —
// while a ResilientClient (or, for the framing test, a bare
// TelemetryClient) must keep its end of the contract:
//
//   * kill/restart mid-stream  → the view converges on the NEW server's
//     truth for the replayed filter, no stale entries, continuity
//     counted in ClientStats;
//   * 1-byte trickle           → every frame still applies (framing
//     survives maximal fragmentation);
//   * truncate at every offset → a cut at ANY byte boundary of the
//     stream — length prefix, header, mid-payload — heals through one
//     reconnect, for a sweep of offsets covering FULL and DELTA frames;
//   * blackhole                → a connected-but-silent session
//     escalates to reconnect (TCP liveness is not stream liveness).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <sstream>
#include <string_view>
#include <vector>

#include "base/backend.hpp"
#include "fault_proxy.hpp"
#include "obs/trace_ring.hpp"
#include "shard/registry.hpp"
#include "svc/client.hpp"
#include "svc/resilient_client.hpp"
#include "svc/server.hpp"
#include "svc/wire.hpp"

namespace approx::svc {
namespace {

using namespace std::chrono_literals;
using approx::svc::testing::FaultProxy;
using shard::ErrorModel;

constexpr auto kFrameTimeout = 5s;

bool view_has(const MaterializedView& view, std::string_view name,
              std::uint64_t* value = nullptr) {
  for (const auto& sample : view.samples()) {
    if (sample.name == name) {
      if (value != nullptr) *value = sample.value;
      return true;
    }
  }
  return false;
}

TEST(Chaos, ServerKillRestartMidStreamConverges) {
  // Server A: two counters under the subscribed prefix, one outside it.
  shard::RegistryT<base::DirectBackend> registry_a(4);
  shard::AnyCounter& requests_a =
      registry_a.create("app_requests", {ErrorModel::kExact, 0, 2});
  registry_a.create("app_errors", {ErrorModel::kExact, 0, 2});
  registry_a.create("other_noise", {ErrorModel::kExact, 0, 2});
  for (int i = 0; i < 42; ++i) requests_a.increment(0);

  ServerOptions options;
  options.period = 5ms;
  options.shm_enable = false;
  auto server_a = std::make_unique<SnapshotServer>(registry_a, 3, options);
  ASSERT_TRUE(server_a->start());
  const std::uint16_t port = server_a->port();

  ResilientClientOptions rc_options;
  rc_options.port = port;
  rc_options.backoff_initial = 1ms;
  rc_options.backoff_cap = 20ms;
  rc_options.silence_deadline = 0ms;
  rc_options.filter.prefixes = {"app_"};
  ResilientClient rc(rc_options);

  // Converge on A's filtered truth. The session's FIRST full may be
  // the pass-all one from before the SUBSCRIBE landed, so wait for the
  // rebase too: exactly the filtered subset, nothing else.
  std::uint64_t value = 0;
  for (int i = 0; i < 500 && !(view_has(rc.view(), "app_requests", &value) &&
                               value == 42 &&
                               view_has(rc.view(), "app_errors") &&
                               rc.view().samples().size() == 2);
       ++i) {
    rc.poll_frame(50ms);
  }
  ASSERT_EQ(value, 42u);
  EXPECT_TRUE(view_has(rc.view(), "app_errors"));
  EXPECT_FALSE(view_has(rc.view(), "other_noise"));  // filter holds
  EXPECT_EQ(rc.stats().sessions_established, 1u);

  // Kill A mid-stream; B takes over the SAME port with a different
  // name table: app_errors is gone, app_shiny_new is born.
  server_a.reset();
  shard::RegistryT<base::DirectBackend> registry_b(4);
  shard::AnyCounter& requests_b =
      registry_b.create("app_requests", {ErrorModel::kExact, 0, 2});
  registry_b.create("app_shiny_new", {ErrorModel::kExact, 0, 2});
  registry_b.create("other_noise", {ErrorModel::kExact, 0, 2});
  for (int i = 0; i < 7; ++i) requests_b.increment(0);
  ServerOptions options_b = options;
  options_b.port = port;
  SnapshotServer server_b(registry_b, 3, options_b);
  ASSERT_TRUE(server_b.start());

  // The supervisor must reconnect, REPLAY the prefix filter, and land
  // the rebase: the view becomes exactly B's filtered subset — the
  // retired app_errors entry must NOT linger.
  for (int i = 0; i < 500 && !(view_has(rc.view(), "app_requests", &value) &&
                               value == 7 &&
                               view_has(rc.view(), "app_shiny_new") &&
                               rc.view().samples().size() == 2);
       ++i) {
    rc.poll_frame(50ms);
  }
  EXPECT_EQ(value, 7u);
  EXPECT_TRUE(view_has(rc.view(), "app_shiny_new"));
  EXPECT_FALSE(view_has(rc.view(), "app_errors"));   // no stale entries
  EXPECT_FALSE(view_has(rc.view(), "other_noise"));  // filter replayed
  EXPECT_EQ(rc.view().samples().size(), 2u);
  EXPECT_TRUE(rc.connected());

  const ClientStats stats = rc.stats();
  EXPECT_GE(stats.sessions_established, 2u);
  EXPECT_GE(stats.disconnects, 1u);
  server_b.stop();
}

/// The ring's events rendered for a failing assertion's message (the
/// post-mortem the trace ring exists for: what the ladder actually did).
std::string trace_dump(const std::vector<obs::TraceEvent>& events) {
  std::ostringstream os;
  os << "\ntrace ring (" << events.size() << " events):\n";
  obs::print_trace(events, os);
  return os.str();
}

TEST(Chaos, TraceRingRecordsTheResilienceLadder) {
  // A supervisor wired to a TraceRing, run through a kill/restart cycle:
  // the drained ring must tell the story in order — session established,
  // session lost, at least one backoff, session re-established. This is
  // the observability contract the chaos jobs rely on: when a ladder
  // test fails in CI, the ring IS the diagnostic.
  shard::RegistryT<base::DirectBackend> registry(2);
  shard::AnyCounter& c = registry.create("c", {ErrorModel::kExact, 0, 1});
  c.increment(0);
  ServerOptions options;
  options.period = 5ms;
  options.shm_enable = false;
  auto server = std::make_unique<SnapshotServer>(registry, 1, options);
  ASSERT_TRUE(server->start());
  const std::uint16_t port = server->port();

  obs::TraceRing ring(128);
  ResilientClientOptions rc_options;
  rc_options.port = port;
  rc_options.backoff_initial = 1ms;
  rc_options.backoff_cap = 20ms;
  rc_options.silence_deadline = 0ms;
  rc_options.trace = &ring;
  ResilientClient rc(rc_options);
  ASSERT_TRUE(rc.poll_frame(kFrameTimeout));
  ASSERT_EQ(rc.stats().sessions_established, 1u);

  // Kill the server; poll through the outage so the supervisor walks
  // lost → backoff, then restart on the same port and let it re-land.
  server.reset();
  for (int i = 0; i < 50 && rc.stats().disconnects == 0; ++i) {
    rc.poll_frame(20ms);
  }
  SnapshotServer revived(registry, 1, [&] {
    ServerOptions o = options;
    o.port = port;
    return o;
  }());
  ASSERT_TRUE(revived.start());
  for (int i = 0; i < 500 && rc.stats().sessions_established < 2; ++i) {
    rc.poll_frame(50ms);
  }
  ASSERT_GE(rc.stats().sessions_established, 2u);

  std::vector<obs::TraceEvent> events;
  ring.snapshot(events);
  ASSERT_FALSE(events.empty());

  // Indices of the ladder's milestones, in ring (oldest-first) order.
  auto index_of = [&](obs::TraceKind kind, std::size_t from) {
    for (std::size_t i = from; i < events.size(); ++i) {
      if (events[i].kind == kind) return static_cast<std::ptrdiff_t>(i);
    }
    return std::ptrdiff_t{-1};
  };
  const std::ptrdiff_t established =
      index_of(obs::TraceKind::kSessionEstablished, 0);
  ASSERT_GE(established, 0) << trace_dump(events);
  const std::ptrdiff_t lost = index_of(
      obs::TraceKind::kSessionLost, static_cast<std::size_t>(established));
  ASSERT_GT(lost, established) << trace_dump(events);
  const std::ptrdiff_t backoff =
      index_of(obs::TraceKind::kBackoff, static_cast<std::size_t>(lost));
  ASSERT_GT(backoff, lost) << trace_dump(events);
  const std::ptrdiff_t reestablished = index_of(
      obs::TraceKind::kSessionEstablished, static_cast<std::size_t>(backoff));
  ASSERT_GT(reestablished, backoff) << trace_dump(events);

  // The milestone payloads: session ordinals count up, backoff carries
  // a bounded delay (attempt ≥ 1, delay ≤ the configured cap).
  EXPECT_EQ(events[static_cast<std::size_t>(established)].a, 1u)
      << trace_dump(events);
  EXPECT_EQ(events[static_cast<std::size_t>(reestablished)].a, 2u)
      << trace_dump(events);
  EXPECT_GE(events[static_cast<std::size_t>(backoff)].a, 1u)
      << trace_dump(events);
  EXPECT_LE(events[static_cast<std::size_t>(backoff)].b, 20u)
      << trace_dump(events);

  rc.close();
  revived.stop();
}

TEST(Chaos, EveryFrameDeliveredInOneByteWrites) {
  shard::RegistryT<base::DirectBackend> registry(4);
  shard::AnyCounter& c = registry.create("c", {ErrorModel::kExact, 0, 2});
  ServerOptions options;
  options.period = 2ms;
  options.shm_enable = false;
  options.ack_deadline_ticks = 0;  // isolate framing from eviction
  SnapshotServer server(registry, 3, options);
  ASSERT_TRUE(server.start());

  FaultProxy proxy(server.port());
  ASSERT_TRUE(proxy.ok());
  proxy.set_trickle(true);  // every server byte arrives alone

  TelemetryClient client;
  ASSERT_TRUE(client.connect(proxy.port()));
  std::uint64_t last_seq = 0;
  for (int frame = 0; frame < 10; ++frame) {
    c.increment(0);  // give every delta real content
    ASSERT_TRUE(client.poll_frame(kFrameTimeout)) << "frame " << frame;
    EXPECT_GT(client.view().sequence(), last_seq);
    last_seq = client.view().sequence();
  }
  EXPECT_GE(client.view().frames_applied(), 10u);
  std::uint64_t value = 0;
  EXPECT_TRUE(view_has(client.view(), "c", &value));
  EXPECT_GE(value, 1u);
  EXPECT_GT(proxy.bytes_forwarded(), 0u);
  // Deltas followed the full: fragmentation broke no frame boundary.
  EXPECT_GE(client.view().delta_frames(), 1u);
  client.close();
  proxy.stop();
  server.stop();
}

TEST(Chaos, TruncateAtEveryBoundaryHealsThroughReconnect) {
  shard::RegistryT<base::DirectBackend> registry(4);
  shard::AnyCounter& c = registry.create("c", {ErrorModel::kExact, 0, 2});
  c.increment(0);
  ServerOptions options;
  options.period = 2ms;
  options.shm_enable = false;
  options.ack_deadline_ticks = 0;
  SnapshotServer server(registry, 3, options);
  ASSERT_TRUE(server.start());

  FaultProxy proxy(server.port());
  ASSERT_TRUE(proxy.ok());

  ResilientClientOptions rc_options;
  rc_options.port = proxy.port();
  rc_options.backoff_initial = 1ms;
  rc_options.backoff_cap = 5ms;
  rc_options.silence_deadline = 0ms;
  ResilientClient rc(rc_options);
  ASSERT_TRUE(rc.poll_frame(kFrameTimeout));

  // Sweep the cut point across every offset of the first 64 bytes of
  // the resumed stream (all of the length prefix and frame header land
  // in there, on both FULL and DELTA boundaries since each session
  // restarts with a full), then stride deeper into payload territory.
  std::vector<std::int64_t> cuts;
  for (std::int64_t n = 1; n <= 64; ++n) cuts.push_back(n);
  for (std::int64_t n = 69; n <= 129; n += 5) cuts.push_back(n);
  for (const std::int64_t cut : cuts) {
    const std::uint64_t sessions_before = proxy.sessions_accepted();
    proxy.set_truncate_after(cut);
    c.increment(0);  // keep deltas flowing toward the cut
    bool healed = false;
    for (int i = 0; i < 800; ++i) {
      rc.poll_frame(50ms);
      c.increment(0);
      if (proxy.sessions_accepted() > sessions_before && rc.connected() &&
          rc.view().frames_applied() > 0) {
        healed = true;
        break;
      }
    }
    ASSERT_TRUE(healed) << "cut after " << cut << " bytes never healed";
  }
  // Every one of those mid-frame cuts cost exactly one session.
  EXPECT_GE(rc.stats().disconnects, cuts.size());
  EXPECT_GE(rc.stats().sessions_established, cuts.size() + 1);
  rc.close();
  proxy.stop();
  server.stop();
}

TEST(Chaos, BlackholedSessionEscalatesToReconnect) {
  shard::RegistryT<base::DirectBackend> registry(4);
  shard::AnyCounter& c = registry.create("c", {ErrorModel::kExact, 0, 2});
  c.increment(0);
  ServerOptions options;
  options.period = 2ms;
  options.shm_enable = false;
  options.ack_deadline_ticks = 0;  // keep the server from evicting first
  SnapshotServer server(registry, 3, options);
  ASSERT_TRUE(server.start());

  FaultProxy proxy(server.port());
  ASSERT_TRUE(proxy.ok());

  ResilientClientOptions rc_options;
  rc_options.port = proxy.port();
  rc_options.backoff_initial = 1ms;
  rc_options.backoff_cap = 10ms;
  rc_options.silence_deadline = 300ms;  // the escalation under test
  ResilientClient rc(rc_options);
  ASSERT_TRUE(rc.poll_frame(kFrameTimeout));
  EXPECT_EQ(rc.stats().reconnects_after_silence, 0u);

  // The middlebox eats the stream: sockets stay open, nothing moves.
  proxy.set_blackhole(true);
  bool escalated = false;
  for (int i = 0; i < 400; ++i) {
    rc.poll_frame(50ms);
    if (rc.stats().reconnects_after_silence >= 1) {
      escalated = true;
      break;
    }
  }
  ASSERT_TRUE(escalated) << "silent session was never escalated";

  // Path heals; the supervisor must land a fresh session and stream.
  proxy.set_blackhole(false);
  proxy.kill_sessions();  // flush the wedged half-open leftovers
  bool resumed = false;
  for (int i = 0; i < 400; ++i) {
    c.increment(0);
    if (rc.poll_frame(50ms) && rc.connected()) {
      resumed = true;
      break;
    }
  }
  ASSERT_TRUE(resumed) << "stream never resumed after the blackhole";
  EXPECT_GE(rc.stats().sessions_established, 2u);
  rc.close();
  proxy.stop();
  server.stop();
}

}  // namespace
}  // namespace approx::svc
