// Tests for the wire-v3 shared-memory snapshot ring transport
// (src/svc/shm.hpp + the server/client negotiation): a same-host
// client that SHM_REQUESTs moves its data path onto the seqlock ring
// — zero syscalls per frame, zero per-reader server work — while TCP
// stays up for control and recovery. Real /dev/shm segments, real
// sockets, real threads.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "base/backend.hpp"
#include "shard/registry.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"
#include "svc/shm.hpp"
#include "svc/wire.hpp"

namespace approx::svc {
namespace {

using namespace std::chrono_literals;
using shard::ErrorModel;

constexpr auto kFrameTimeout = 5s;

/// Pumps the client until shm_active() with at least `frames` ring
/// frames applied. False on timeout.
bool await_shm(TelemetryClient& client, std::uint64_t frames,
               int max_polls = 400) {
  for (int i = 0; i < max_polls; ++i) {
    if (!client.poll_frame(kFrameTimeout)) return false;
    if (client.shm_active() && client.shm_frames() >= frames) return true;
  }
  return false;
}

bool await_counter(TelemetryClient& client, const std::string& name,
                   std::uint64_t expected, int max_polls = 400) {
  for (int i = 0; i < max_polls; ++i) {
    if (!client.poll_frame(kFrameTimeout)) return false;
    for (const shard::Sample& sample : client.view().samples()) {
      if (sample.name == name && sample.value >= expected) return true;
    }
  }
  return false;
}

TEST(ShmRingSegment, CreatePublishOpenRoundtrip) {
  ShmRingWriter writer;
  ASSERT_TRUE(writer.create(/*slot_count=*/4, /*slot_payload_bytes=*/256));
  EXPECT_TRUE(writer.active());
  EXPECT_FALSE(writer.name().empty());
  EXPECT_EQ(writer.name().front(), '/');
  EXPECT_NE(writer.generation(), 0u);

  ShmRingReader reader;
  // Wrong generation must not attach (stale offer protection).
  EXPECT_FALSE(reader.open(writer.name(), writer.generation() + 1));
  ASSERT_TRUE(reader.open(writer.name(), writer.generation()));
  const std::string payload = "shm frame payload bytes";
  ASSERT_TRUE(writer.publish(payload));
  std::string out;
  ASSERT_EQ(reader.poll(out), base::RingPoll::kFrame);
  EXPECT_EQ(out, payload);

  // destroy() unlinks the name; the attached reader keeps its mapping
  // and can still drain already-published frames, but the name is gone.
  writer.destroy();
  EXPECT_FALSE(writer.active());
  ShmRingReader late;
  EXPECT_FALSE(late.open("/approx-ring-gone-0000000000000000", 1));
  EXPECT_EQ(reader.poll(out), base::RingPoll::kEmpty);
}

TEST(ShmTransport, NegotiationMovesDataPathOntoRing) {
  shard::RegistryT<base::DirectBackend> registry(4);
  shard::AnyCounter& hits = registry.create("hits", {ErrorModel::kExact, 0, 2});
  ServerOptions options;
  options.period = 5ms;
  SnapshotServer server(registry, 3, options);
  ASSERT_TRUE(server.start());

  TelemetryClient client;
  ASSERT_TRUE(client.connect(server.port()));
  ASSERT_TRUE(client.poll_frame(kFrameTimeout));  // TCP full first
  ASSERT_TRUE(client.request_shm());
  ASSERT_TRUE(await_shm(client, 3));
  EXPECT_TRUE(client.shm_active());

  // Live values still flow — now off the ring.
  const std::uint64_t ring_frames_before = client.shm_frames();
  for (int i = 0; i < 20; ++i) hits.increment(0);
  EXPECT_TRUE(await_counter(client, "hits", 20));
  EXPECT_GT(client.shm_frames(), ring_frames_before);
  EXPECT_GT(client.last_latency_ns(), 0u);

  const ServerStats stats = server.stats();
  EXPECT_GE(stats.shm_requests_received, 1u);
  EXPECT_GE(stats.shm_offers_sent, 1u);
  EXPECT_GE(stats.shm_accepts_received, 1u);
  EXPECT_GT(stats.shm_frames_published, 0u);
  EXPECT_EQ(stats.shm_publish_failures, 0u);
  server.stop();
}

TEST(ShmTransport, ShmViewMatchesTcpViewAtSameSequence) {
  shard::RegistryT<base::DirectBackend> registry(4);
  std::vector<shard::AnyCounter*> counters;
  for (int i = 0; i < 8; ++i) {
    counters.push_back(&registry.create("c" + std::to_string(i),
                                        {ErrorModel::kExact, 0, 2}));
  }
  ServerOptions options;
  options.period = 5ms;
  SnapshotServer server(registry, 3, options);
  ASSERT_TRUE(server.start());

  TelemetryClient shm_client;
  TelemetryClient tcp_client;
  ASSERT_TRUE(shm_client.connect(server.port()));
  ASSERT_TRUE(tcp_client.connect(server.port()));
  ASSERT_TRUE(shm_client.poll_frame(kFrameTimeout));
  ASSERT_TRUE(shm_client.request_shm());
  ASSERT_TRUE(await_shm(shm_client, 1));

  // Churn, then freeze the fleet so both clients can reach a quiesced
  // frame carrying identical values.
  for (int round = 0; round < 5; ++round) {
    for (std::size_t i = 0; i < counters.size(); ++i) {
      for (int n = 0; n <= round + static_cast<int>(i); ++n) {
        counters[i]->increment(0);
      }
    }
    ASSERT_TRUE(shm_client.poll_frame(kFrameTimeout));
    ASSERT_TRUE(tcp_client.poll_frame(kFrameTimeout));
  }
  const std::uint64_t final_c0 = 15;  // i=0 gets round+1 per round: Σ=15
  ASSERT_TRUE(await_counter(shm_client, "c0", final_c0));
  ASSERT_TRUE(await_counter(tcp_client, "c0", final_c0));

  // Pump both to the same (quiesced) tick sequence, then the two views
  // must be byte-equivalent: same table, same values, same staleness
  // metadata — the transport is invisible above TelemetryClient.
  for (int i = 0;
       i < 100 && shm_client.view().sequence() != tcp_client.view().sequence();
       ++i) {
    TelemetryClient& behind =
        shm_client.view().sequence() < tcp_client.view().sequence()
            ? shm_client
            : tcp_client;
    ASSERT_TRUE(behind.poll_frame(kFrameTimeout));
  }
  ASSERT_EQ(shm_client.view().sequence(), tcp_client.view().sequence());
  EXPECT_TRUE(shm_client.shm_active());
  EXPECT_FALSE(tcp_client.shm_active());
  const auto& a = shm_client.view().samples();
  const auto& b = tcp_client.view().samples();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].value, b[i].value);
    EXPECT_EQ(a[i].model, b[i].model);
    EXPECT_EQ(a[i].error_bound, b[i].error_bound);
  }
  EXPECT_EQ(shm_client.view().last_data_sequence(),
            tcp_client.view().last_data_sequence());
  server.stop();
}

TEST(ShmTransport, ParkedRingReaderOverrunsAndResyncsOverTcp) {
  shard::RegistryT<base::DirectBackend> registry(4);
  shard::AnyCounter& c = registry.create("c", {ErrorModel::kExact, 0, 2});
  ServerOptions options;
  options.period = 5ms;
  options.shm_slots = 2;  // tiny ring: two ticks of parking lap it
  SnapshotServer server(registry, 3, options);
  ASSERT_TRUE(server.start());

  TelemetryClient client;
  ASSERT_TRUE(client.connect(server.port()));
  ASSERT_TRUE(client.poll_frame(kFrameTimeout));
  ASSERT_TRUE(client.request_shm());
  ASSERT_TRUE(await_shm(client, 1));

  // Park well past slot_count ticks; the ring laps the reader.
  std::this_thread::sleep_for(100ms);
  c.increment(0);
  EXPECT_TRUE(await_counter(client, "c", 1));
  EXPECT_GE(client.shm_overruns(), 1u);
  EXPECT_TRUE(client.shm_active());  // ring survives as the data path
  const ServerStats stats = server.stats();
  EXPECT_GE(stats.resyncs_received, 1u);
  server.stop();
}

TEST(ShmTransport, ShmDisabledServerNeverOffersClientStaysOnTcp) {
  shard::RegistryT<base::DirectBackend> registry(4);
  shard::AnyCounter& c = registry.create("c", {ErrorModel::kExact, 0, 2});
  c.increment(0);
  ServerOptions options;
  options.period = 5ms;
  options.shm_enable = false;
  SnapshotServer server(registry, 3, options);
  ASSERT_TRUE(server.start());

  TelemetryClient client;
  ASSERT_TRUE(client.connect(server.port()));
  ASSERT_TRUE(client.request_shm());
  // Frames keep flowing over TCP; no offer ever arrives.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client.poll_frame(kFrameTimeout));
  }
  EXPECT_FALSE(client.shm_active());
  EXPECT_EQ(client.shm_frames(), 0u);
  const ServerStats stats = server.stats();
  EXPECT_GE(stats.shm_requests_received, 1u);
  EXPECT_EQ(stats.shm_offers_sent, 0u);
  EXPECT_EQ(stats.shm_frames_published, 0u);
  server.stop();
}

TEST(ShmTransport, SubscribeDetachesRingAndRebasesOntoFilteredTcp) {
  shard::RegistryT<base::DirectBackend> registry(4);
  shard::AnyCounter& keep =
      registry.create("keep/a", {ErrorModel::kExact, 0, 2});
  registry.create("drop/b", {ErrorModel::kExact, 0, 2});
  ServerOptions options;
  options.period = 5ms;
  SnapshotServer server(registry, 3, options);
  ASSERT_TRUE(server.start());

  TelemetryClient client;
  ASSERT_TRUE(client.connect(server.port()));
  ASSERT_TRUE(client.poll_frame(kFrameTimeout));
  ASSERT_TRUE(client.request_shm());
  ASSERT_TRUE(await_shm(client, 2));

  SubscriptionFilter filter;
  filter.prefixes.push_back("keep/");
  ASSERT_TRUE(client.subscribe(filter));
  EXPECT_FALSE(client.shm_active());  // detached immediately
  keep.increment(0);
  ASSERT_TRUE(await_counter(client, "keep/a", 1));
  EXPECT_FALSE(client.view().rebase_pending());
  ASSERT_EQ(client.view().samples().size(), 1u);
  EXPECT_EQ(client.view().samples()[0].name, "keep/a");
  // Post-subscribe frames are TCP frames; the ring counters froze.
  const std::uint64_t ring_frames = client.shm_frames();
  ASSERT_TRUE(client.poll_frame(kFrameTimeout));
  EXPECT_EQ(client.shm_frames(), ring_frames);
  EXPECT_FALSE(client.shm_active());
  server.stop();
}

TEST(ShmTransport, DeadRingWriterDemotesClientToTcp) {
  // The satellite-2 regression: a writer that DIES (SIGSTOP, kill -9)
  // leaves the ring's generation AND head frozen — RingPoll::kDead
  // never fires (that needs a generation CHANGE), the doorbell just
  // times out forever, and the old client spun there indistinguishable
  // from a quiet fleet. The dead-writer probe must demote it to TCP
  // within the ring-idle deadline while the TCP session stays usable.
  //
  // A real SnapshotServer cannot freeze its collector alone, so the
  // test IS the server: it owns the listening socket and the ring
  // writer, hand-encoding the offer and the frames — and then simply
  // stops publishing.
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          &len),
            0);
  const std::uint16_t port = ntohs(addr.sin_port);

  ShmRingWriter writer;
  ASSERT_TRUE(writer.create(/*slot_count=*/8, /*slot_payload_bytes=*/4096));

  TelemetryClient client;
  client.set_ring_idle_deadline(100ms);
  ASSERT_TRUE(client.connect(port));
  const int peer = ::accept(listen_fd, nullptr, nullptr);
  ASSERT_GE(peer, 0);
  ASSERT_TRUE(client.request_shm());

  // Hand the client the offer on its data channel (inbound control
  // records — the request, the eventual ACCEPT and RESYNC — are left
  // in the kernel buffer; this fake server never reads).
  ShmOffer offer;
  offer.name = writer.name();
  offer.generation = writer.generation();
  offer.slot_count = writer.slot_count();
  offer.slot_payload_bytes = writer.slot_payload_bytes();
  std::string offer_frame;
  ASSERT_TRUE(encode_shm_offer_frame(offer, offer_frame));
  ASSERT_EQ(::send(peer, offer_frame.data(), offer_frame.size(),
                   MSG_NOSIGNAL),
            static_cast<ssize_t>(offer_frame.size()));

  // Publish fulls until the client has adopted the ring and applied a
  // frame off it (adoption skips to the head, so frames published
  // before it land are skipped — keep publishing until one sticks).
  shard::TelemetryFrame frame;
  frame.registry_version = 1;
  frame.samples.emplace_back();
  frame.samples[0].name = "c";
  std::string encoded;
  std::uint64_t seq = 0;
  bool ring_live = false;
  for (int i = 0; i < 200 && !ring_live; ++i) {
    frame.sequence = ++seq;
    frame.samples[0].value = seq;
    encode_full_frame(frame, steady_now_ns(), encoded);
    ASSERT_TRUE(writer.publish(
        std::string_view(encoded).substr(kFramePrefixBytes)));
    if (client.poll_frame(50ms)) {
      ring_live = client.shm_active() && client.shm_frames() >= 1;
    }
  }
  ASSERT_TRUE(ring_live);
  EXPECT_EQ(client.shm_demotions(), 0u);

  // The writer now goes silent — from the reader's side exactly a
  // SIGSTOP'd server: generation frozen, head frozen, doorbell mute.
  bool demoted = false;
  for (int i = 0; i < 100 && !demoted; ++i) {
    client.poll_frame(50ms);
    demoted = !client.shm_active();
  }
  EXPECT_TRUE(demoted) << "client spun on the dead ring";
  EXPECT_EQ(client.shm_demotions(), 1u);
  EXPECT_TRUE(client.connected()) << "demotion must keep the TCP session";

  // The TCP rung works: a newer full over the socket applies cleanly.
  frame.sequence = ++seq;
  frame.samples[0].value = 1234;
  encode_full_frame(frame, steady_now_ns(), encoded);
  ASSERT_EQ(::send(peer, encoded.data(), encoded.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(encoded.size()));
  ASSERT_TRUE(client.poll_frame(kFrameTimeout));
  ASSERT_EQ(client.view().samples().size(), 1u);
  EXPECT_EQ(client.view().samples()[0].value, 1234u);
  EXPECT_FALSE(client.shm_active());
  ::close(peer);
  ::close(listen_fd);
}

TEST(ShmTransport, ServerStopSurfacesAsCleanDisconnect) {
  shard::RegistryT<base::DirectBackend> registry(4);
  registry.create("c", {ErrorModel::kExact, 0, 2});
  ServerOptions options;
  options.period = 5ms;
  SnapshotServer server(registry, 3, options);
  ASSERT_TRUE(server.start());

  TelemetryClient client;
  ASSERT_TRUE(client.connect(server.port()));
  ASSERT_TRUE(client.poll_frame(kFrameTimeout));
  ASSERT_TRUE(client.request_shm());
  ASSERT_TRUE(await_shm(client, 1));
  server.stop();
  // The ring stops filling and TCP EOFs: poll_frame winds down false
  // instead of hanging or crashing on the unlinked segment.
  while (client.poll_frame(100ms)) {
  }
  EXPECT_FALSE(client.connected());
  EXPECT_FALSE(client.shm_active());
}

}  // namespace
}  // namespace approx::svc
