// Tests for the ResilientClient supervisor (src/svc/resilient_client.hpp):
// the backoff schedule pinned deterministically through the injectable
// clock/sleep, and cross-session continuity (sessions, gaps, staleness
// that keeps ticking through an outage) against a real server bounce.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "base/backend.hpp"
#include "shard/registry.hpp"
#include "svc/resilient_client.hpp"
#include "svc/server.hpp"

namespace approx::svc {
namespace {

using namespace std::chrono_literals;
using shard::ErrorModel;

constexpr auto kFrameTimeout = 5s;

/// A loopback port with nothing listening: bind ephemeral, note, close.
/// Connects to it fail fast (ECONNREFUSED), which is what the backoff
/// tests need — every attempt is instant, only the SLEEPS carry time.
std::uint16_t closed_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  ::close(fd);
  return ntohs(addr.sin_port);
}

/// Runs a ResilientClient against a dead port under a fake clock until
/// `attempts` dials happened; returns the recorded backoff sleeps (ms).
std::vector<std::uint64_t> record_backoffs(std::uint64_t seed,
                                           std::uint64_t attempts) {
  std::uint64_t fake_ns = 1;  // the injected steady clock
  std::vector<std::uint64_t> sleeps;
  ResilientClientOptions options;
  options.port = closed_port();
  options.backoff_initial = 50ms;
  options.backoff_cap = 2000ms;
  options.backoff_multiplier = 2.0;
  options.jitter = 0.5;
  options.seed = seed;
  options.now_ns = [&fake_ns] { return fake_ns; };
  options.sleep_fn = [&](std::chrono::milliseconds d) {
    sleeps.push_back(static_cast<std::uint64_t>(d.count()));
    fake_ns += static_cast<std::uint64_t>(d.count()) * 1'000'000ull;
  };
  ResilientClient rc(options);
  while (rc.stats().connect_attempts < attempts) {
    // Zero-timeout polls each make exactly one dial (sleeping out the
    // owed backoff first), so the schedule is stepped deterministically.
    EXPECT_FALSE(rc.poll_frame(0ms));
  }
  EXPECT_EQ(rc.stats().connect_failures, attempts);
  EXPECT_EQ(rc.stats().sessions_established, 0u);
  std::uint64_t slept = 0;
  for (std::uint64_t s : sleeps) slept += s;
  EXPECT_EQ(rc.stats().total_backoff_ms, slept);
  return sleeps;
}

TEST(ResilientClient, BackoffIsJitteredCappedExponentialAndSeeded) {
  const std::vector<std::uint64_t> sleeps = record_backoffs(/*seed=*/7, 12);
  // First dial is immediate: 12 attempts → 11 backed-off ones.
  ASSERT_EQ(sleeps.size(), 11u);
  // Each delay k lies in [(1−jitter)·base, base] for the un-jittered
  // base 50·2^k capped at 2000.
  std::uint64_t base = 50;
  for (std::size_t k = 0; k < sleeps.size(); ++k) {
    EXPECT_GE(sleeps[k], base - base / 2) << "delay " << k;
    EXPECT_LE(sleeps[k], base) << "delay " << k;
    base = std::min<std::uint64_t>(base * 2, 2000);
  }
  // The cap holds forever after.
  EXPECT_LE(sleeps.back(), 2000u);

  // Same seed → the identical schedule; a different seed decorrelates
  // (11 draws over spans ≥ 26 values: a full collision is ~impossible).
  EXPECT_EQ(record_backoffs(7, 12), sleeps);
  EXPECT_NE(record_backoffs(8, 12), sleeps);
}

TEST(ResilientClient, ZeroJitterIsTheExactExponential) {
  std::uint64_t fake_ns = 1;
  std::vector<std::uint64_t> sleeps;
  ResilientClientOptions options;
  options.port = closed_port();
  options.backoff_initial = 10ms;
  options.backoff_cap = 80ms;
  options.jitter = 0.0;
  options.now_ns = [&fake_ns] { return fake_ns; };
  options.sleep_fn = [&](std::chrono::milliseconds d) {
    sleeps.push_back(static_cast<std::uint64_t>(d.count()));
    fake_ns += static_cast<std::uint64_t>(d.count()) * 1'000'000ull;
  };
  ResilientClient rc(options);
  while (rc.stats().connect_attempts < 7) {
    EXPECT_FALSE(rc.poll_frame(0ms));
  }
  EXPECT_EQ(sleeps, (std::vector<std::uint64_t>{10, 20, 40, 80, 80, 80}));
}

TEST(ResilientClient, ReconnectsAcrossServerBounceAndStalenessKeepsTicking) {
  shard::RegistryT<base::DirectBackend> registry(4);
  shard::AnyCounter& c = registry.create("c", {ErrorModel::kExact, 0, 2});
  c.increment(0);
  ServerOptions options;
  options.period = 5ms;
  options.shm_enable = false;
  SnapshotServer server(registry, 3, options);
  ASSERT_TRUE(server.start());
  const std::uint16_t port = server.port();

  std::uint64_t fake_ns = 1'000'000'000ull;  // t = 1 s on the fake clock
  ResilientClientOptions rc_options;
  rc_options.port = port;
  rc_options.backoff_initial = 1ms;
  rc_options.backoff_cap = 20ms;
  rc_options.silence_deadline = 0ms;  // not under test here
  rc_options.now_ns = [&fake_ns] { return fake_ns; };
  rc_options.sleep_fn = [&fake_ns](std::chrono::milliseconds d) {
    fake_ns += static_cast<std::uint64_t>(d.count()) * 1'000'000ull;
  };
  ResilientClient rc(rc_options);

  ASSERT_TRUE(rc.poll_frame(kFrameTimeout));
  EXPECT_EQ(rc.stats().sessions_established, 1u);
  EXPECT_EQ(rc.staleness_ns(), 0u);  // frame time == fake now

  // Outage. The staleness clock keeps ticking against the LAST frame —
  // it does not reset with the session or the view.
  server.stop();
  fake_ns += 5'000'000'000ull;  // 5 s of outage on the fake clock
  EXPECT_GE(rc.staleness_ns(), 5'000'000'000ull);
  // Re-dials fail and back off until the (fake-clock) timeout runs out.
  EXPECT_FALSE(rc.poll_frame(100ms));
  EXPECT_GE(rc.stats().connect_failures, 1u);
  EXPECT_GE(rc.stats().disconnects, 1u);
  EXPECT_GE(rc.staleness_ns(), 5'000'000'000ull);

  // Server comes back on the SAME port (a restart, not a new service).
  ServerOptions restart = options;
  restart.port = port;
  shard::RegistryT<base::DirectBackend> registry2(4);
  shard::AnyCounter& c2 = registry2.create("c", {ErrorModel::kExact, 0, 2});
  for (int i = 0; i < 7; ++i) c2.increment(0);
  SnapshotServer server2(registry2, 3, restart);
  ASSERT_TRUE(server2.start());

  ASSERT_TRUE(rc.poll_frame(kFrameTimeout));
  EXPECT_EQ(rc.stats().sessions_established, 2u);
  EXPECT_EQ(rc.staleness_ns(), 0u);  // fresh frame: stale no more
  ASSERT_EQ(rc.view().samples().size(), 1u);
  EXPECT_EQ(rc.view().samples()[0].value, 7u);
  EXPECT_TRUE(rc.connected());
  server2.stop();
}

}  // namespace
}  // namespace approx::svc
