// Decode-hardening and round-trip tests for the v4 vector (histogram)
// wire entries (src/svc/wire.hpp): version-byte stamping, truncation
// at every length, byte-flip fuzz, oversized bucket counts, bad edge
// encodings, delta/row shape mismatches, and version skew — an
// untrusted frame may be rejected, never misdecoded, and a rejected
// frame leaves the view untouched.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "shard/aggregator.hpp"
#include "shard/registry.hpp"
#include "svc/wire.hpp"

namespace approx::svc {
namespace {

using shard::ErrorModel;
using shard::Sample;
using shard::TelemetryFrame;

std::string_view payload_of(const std::string& wire) {
  return std::string_view(wire).substr(kFramePrefixBytes);
}

Sample histogram_sample(const std::string& name) {
  Sample sample;
  sample.name = name;
  sample.model = ErrorModel::kHistogram;
  sample.error_bound = 16;
  sample.bucket_bounds = {10, 100, 500, 1000};
  sample.bucket_counts = {10, 90, 400, 500, 0};
  sample.value = 1000;
  return sample;
}

/// A mixed fleet: scalar, histogram, scalar — vector entries must
/// interleave cleanly with the frozen scalar layout.
TelemetryFrame mixed_frame(std::uint64_t sequence,
                           std::uint64_t registry_version) {
  TelemetryFrame frame;
  frame.sequence = sequence;
  frame.registry_version = registry_version;
  Sample a;
  a.name = "aa_scalar";
  a.model = ErrorModel::kExact;
  a.value = 7;
  frame.samples.push_back(a);
  frame.samples.push_back(histogram_sample("mm_hist"));
  Sample z;
  z.name = "zz_scalar";
  z.model = ErrorModel::kAdditive;
  z.error_bound = 64;
  z.value = 123456;
  frame.samples.push_back(z);
  return frame;
}

/// Hand-assembled payload header (no stream prefix).
std::string raw_header(std::uint8_t version, FrameKind kind,
                       std::uint64_t sequence, std::uint64_t registry_version) {
  std::string out;
  out.push_back(static_cast<char>(kWireMagic0));
  out.push_back(static_cast<char>(kWireMagic1));
  out.push_back(static_cast<char>(version));
  out.push_back(static_cast<char>(kind));
  append_uvarint(out, sequence);
  append_uvarint(out, registry_version);
  append_uvarint(out, 0);  // collect_ns
  return out;
}

TEST(WireStats, VersionByteIsV4IffVectorsRide) {
  TelemetryFrame frame = mixed_frame(1, 1);
  std::string wire;
  encode_full_frame(frame, 0, wire);
  EXPECT_EQ(static_cast<unsigned char>(payload_of(wire)[2]), kVectorVersion);

  // Scalars only: the frozen v1 bytes, exactly.
  TelemetryFrame scalars = mixed_frame(1, 1);
  scalars.samples.erase(scalars.samples.begin() + 1);
  encode_full_frame(scalars, 0, wire);
  EXPECT_EQ(static_cast<unsigned char>(payload_of(wire)[2]), kWireVersion);

  // Same for deltas: vector entry ⇒ v4, scalar-only ⇒ v1.
  std::vector<DeltaEntry> entries;
  entries.emplace_back(0, 9);
  encode_delta_frame(2, 1, 0, 1, entries, wire);
  EXPECT_EQ(static_cast<unsigned char>(payload_of(wire)[2]), kWireVersion);
  entries.emplace_back(1, 0, std::vector<std::uint64_t>{1, 2, 3, 4, 5});
  encode_delta_frame(2, 1, 0, 1, entries, wire);
  EXPECT_EQ(static_cast<unsigned char>(payload_of(wire)[2]), kVectorVersion);
}

TEST(WireStats, MixedFullRoundTripIncludingExtremes) {
  TelemetryFrame frame = mixed_frame(3, 2);
  // Saturation paths: huge counts must decode with a saturated sum,
  // and a max-edge bound must survive the diff encoding.
  Sample extreme = histogram_sample("xx_extreme");
  extreme.bucket_bounds = {1, std::numeric_limits<std::uint64_t>::max()};
  extreme.bucket_counts = {std::numeric_limits<std::uint64_t>::max(),
                           std::numeric_limits<std::uint64_t>::max(), 3};
  frame.samples.push_back(extreme);
  std::string wire;
  encode_full_frame(frame, 77, wire);

  MaterializedView view;
  ASSERT_EQ(view.apply(payload_of(wire)), ApplyResult::kApplied);
  ASSERT_EQ(view.samples().size(), 4u);
  const Sample& hist = view.samples()[1];
  EXPECT_EQ(hist.name, "mm_hist");
  EXPECT_EQ(hist.model, ErrorModel::kHistogram);
  EXPECT_EQ(hist.error_bound, 16u);
  EXPECT_EQ(hist.bucket_bounds, (std::vector<std::uint64_t>{10, 100, 500,
                                                            1000}));
  EXPECT_EQ(hist.bucket_counts,
            (std::vector<std::uint64_t>{10, 90, 400, 500, 0}));
  EXPECT_EQ(hist.value, 1000u);
  const Sample& xx = view.samples()[3];
  EXPECT_EQ(xx.bucket_bounds[1], std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(xx.value, std::numeric_limits<std::uint64_t>::max());  // saturated
  // Scalar neighbors are untouched by the vector entries between them.
  EXPECT_EQ(view.samples()[0].value, 7u);
  EXPECT_EQ(view.samples()[2].value, 123456u);
}

TEST(WireStats, TruncationAtEveryLengthRejectsAndLeavesViewUntouched) {
  TelemetryFrame frame = mixed_frame(1, 1);
  std::string wire;
  encode_full_frame(frame, 0, wire);
  const std::string_view payload = payload_of(wire);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    MaterializedView view;
    EXPECT_EQ(view.apply(payload.substr(0, len)), ApplyResult::kCorrupt)
        << "accepted a frame truncated to " << len << " bytes";
    EXPECT_TRUE(view.samples().empty());
    EXPECT_EQ(view.sequence(), 0u);
  }
}

TEST(WireStats, ByteFlipFuzzNeverMisdecodes) {
  TelemetryFrame frame = mixed_frame(1, 1);
  std::string wire;
  encode_full_frame(frame, 0, wire);
  const std::string payload(payload_of(wire));
  for (std::size_t pos = 0; pos < payload.size(); ++pos) {
    for (const unsigned char flip : {0x01, 0x80, 0xFF}) {
      std::string mutated = payload;
      mutated[pos] = static_cast<char>(
          static_cast<unsigned char>(mutated[pos]) ^ flip);
      MaterializedView view;
      const ApplyResult result = view.apply(mutated);
      if (result != ApplyResult::kApplied) {
        // Rejected: the view must be untouched.
        EXPECT_TRUE(view.samples().empty()) << "pos " << pos;
        continue;
      }
      // A flip that survives (e.g. inside a count varint) must still
      // decode into a structurally consistent view: every histogram
      // entry keeps B counts to B−1 finite ascending edges.
      for (const Sample& sample : view.samples()) {
        if (sample.model != ErrorModel::kHistogram) {
          EXPECT_TRUE(sample.bucket_counts.empty());
          continue;
        }
        ASSERT_GE(sample.bucket_counts.size(), 2u) << "pos " << pos;
        ASSERT_EQ(sample.bucket_counts.size(),
                  sample.bucket_bounds.size() + 1)
            << "pos " << pos;
        for (std::size_t e = 1; e < sample.bucket_bounds.size(); ++e) {
          ASSERT_LT(sample.bucket_bounds[e - 1], sample.bucket_bounds[e])
              << "pos " << pos;
        }
      }
    }
  }
}

TEST(WireStats, OversizedBucketCountsRejectedBeforeAllocation) {
  for (const std::uint64_t nbuckets :
       {std::uint64_t{513}, std::uint64_t{1} << 20, std::uint64_t{1} << 60}) {
    std::string payload = raw_header(kVectorVersion, FrameKind::kFull, 1, 1);
    append_uvarint(payload, 1);  // count
    append_uvarint(payload, 1);  // name_len
    payload.push_back('h');
    payload.push_back(static_cast<char>(ErrorModel::kHistogram));
    append_uvarint(payload, 16);        // bound
    append_uvarint(payload, nbuckets);  // absurd claim
    // No body: the claim alone must be rejected (no allocation happens
    // first — a lying length cannot command memory).
    MaterializedView view;
    EXPECT_EQ(view.apply(payload), ApplyResult::kCorrupt)
        << "nbuckets " << nbuckets;
  }
  // nbuckets < 2 is equally meaningless (a histogram has an overflow
  // bucket and at least one finite edge).
  for (const std::uint64_t nbuckets : {std::uint64_t{0}, std::uint64_t{1}}) {
    std::string payload = raw_header(kVectorVersion, FrameKind::kFull, 1, 1);
    append_uvarint(payload, 1);
    append_uvarint(payload, 1);
    payload.push_back('h');
    payload.push_back(static_cast<char>(ErrorModel::kHistogram));
    append_uvarint(payload, 16);
    append_uvarint(payload, nbuckets);
    append_uvarint(payload, 5);  // would-be edge0
    MaterializedView view;
    EXPECT_EQ(view.apply(payload), ApplyResult::kCorrupt)
        << "nbuckets " << nbuckets;
  }
}

TEST(WireStats, BadEdgeEncodingsRejected) {
  // A zero edge diff (edges must strictly ascend)...
  std::string payload = raw_header(kVectorVersion, FrameKind::kFull, 1, 1);
  append_uvarint(payload, 1);
  append_uvarint(payload, 1);
  payload.push_back('h');
  payload.push_back(static_cast<char>(ErrorModel::kHistogram));
  append_uvarint(payload, 16);
  append_uvarint(payload, 3);   // nbuckets: 2 finite edges + overflow
  append_uvarint(payload, 10);  // edge0
  append_uvarint(payload, 0);   // zero diff: edges would not ascend
  for (int i = 0; i < 3; ++i) append_uvarint(payload, 1);  // counts
  MaterializedView view;
  EXPECT_EQ(view.apply(payload), ApplyResult::kCorrupt);

  // ...and an overflowing diff (edge past 2^64) are both corrupt.
  payload = raw_header(kVectorVersion, FrameKind::kFull, 1, 1);
  append_uvarint(payload, 1);
  append_uvarint(payload, 1);
  payload.push_back('h');
  payload.push_back(static_cast<char>(ErrorModel::kHistogram));
  append_uvarint(payload, 16);
  append_uvarint(payload, 3);
  append_uvarint(payload, std::numeric_limits<std::uint64_t>::max());
  append_uvarint(payload, 5);  // wraps past 2^64
  for (int i = 0; i < 3; ++i) append_uvarint(payload, 1);
  EXPECT_EQ(view.apply(payload), ApplyResult::kCorrupt);
}

TEST(WireStats, VersionSkewRejectedCleanly) {
  // A v1 frame has no vector grammar: a histogram model byte inside it
  // must be rejected, not guessed at.
  std::string payload = raw_header(kWireVersion, FrameKind::kFull, 1, 1);
  append_uvarint(payload, 1);
  append_uvarint(payload, 1);
  payload.push_back('h');
  payload.push_back(static_cast<char>(ErrorModel::kHistogram));
  append_uvarint(payload, 16);
  append_uvarint(payload, 42);  // a v1 decoder would read this as value
  MaterializedView view;
  EXPECT_EQ(view.apply(payload), ApplyResult::kCorrupt);
  EXPECT_TRUE(view.samples().empty());

  // An unknown future version is corrupt for THIS decoder — the exact
  // behavior a v1-era client shows a v4 frame (reject, never misread).
  TelemetryFrame frame = mixed_frame(1, 1);
  std::string wire;
  encode_full_frame(frame, 0, wire);
  std::string future(payload_of(wire));
  future[2] = 6;  // one past kTopKVersion, the newest known revision
  EXPECT_EQ(view.apply(future), ApplyResult::kCorrupt);

  // And a v4 delta against a fresh view is kNeedFull, exactly like v1.
  std::vector<DeltaEntry> entries;
  entries.emplace_back(0, 0, std::vector<std::uint64_t>{1, 2, 3, 4, 5});
  encode_delta_frame(2, 1, 0, 1, entries, wire);
  MaterializedView fresh;
  EXPECT_EQ(fresh.apply(payload_of(wire)), ApplyResult::kNeedFull);
}

TEST(WireStats, DeltaShapeMismatchesAreCorruptAndAtomic) {
  TelemetryFrame frame = mixed_frame(1, 1);
  std::string wire;
  encode_full_frame(frame, 0, wire);
  MaterializedView view;
  ASSERT_EQ(view.apply(payload_of(wire)), ApplyResult::kApplied);
  const std::vector<Sample> before = view.samples();

  // Scalar delta entry aimed at the histogram row.
  std::vector<DeltaEntry> entries;
  entries.emplace_back(1, 4242);
  encode_delta_frame(2, 1, 0, 1, entries, wire);
  EXPECT_EQ(view.apply(payload_of(wire)), ApplyResult::kCorrupt);

  // Vector delta entry aimed at a scalar row.
  entries.clear();
  entries.emplace_back(0, 0, std::vector<std::uint64_t>{1, 2, 3, 4, 5});
  encode_delta_frame(2, 1, 0, 1, entries, wire);
  EXPECT_EQ(view.apply(payload_of(wire)), ApplyResult::kCorrupt);

  // Bucket-count mismatch against the row's layout (4 ≠ 5).
  entries.clear();
  entries.emplace_back(1, 0, std::vector<std::uint64_t>{1, 2, 3, 4});
  encode_delta_frame(2, 1, 0, 1, entries, wire);
  EXPECT_EQ(view.apply(payload_of(wire)), ApplyResult::kCorrupt);

  // A single-count vector is never a histogram (nbuckets 1 < 2).
  entries.clear();
  entries.emplace_back(1, 0, std::vector<std::uint64_t>{7});
  encode_delta_frame(2, 1, 0, 1, entries, wire);
  EXPECT_EQ(view.apply(payload_of(wire)), ApplyResult::kCorrupt);

  // A mixed delta where a LATER entry is malformed: nothing from the
  // earlier (valid) entries may stick — corrupt applies atomically.
  entries.clear();
  entries.emplace_back(0, 999);
  entries.emplace_back(1, 0, std::vector<std::uint64_t>{1, 2, 3});
  encode_delta_frame(2, 1, 0, 1, entries, wire);
  EXPECT_EQ(view.apply(payload_of(wire)), ApplyResult::kCorrupt);

  ASSERT_EQ(view.samples().size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(view.samples()[i].value, before[i].value) << i;
    EXPECT_EQ(view.samples()[i].bucket_counts, before[i].bucket_counts) << i;
  }
  EXPECT_EQ(view.sequence(), 1u);  // no corrupt frame advanced the view

  // The happy path still works after all those rejections.
  entries.clear();
  entries.emplace_back(1, 0, std::vector<std::uint64_t>{11, 90, 400, 500, 2});
  encode_delta_frame(2, 1, 0, 1, entries, wire);
  ASSERT_EQ(view.apply(payload_of(wire)), ApplyResult::kApplied);
  EXPECT_EQ(view.samples()[1].bucket_counts,
            (std::vector<std::uint64_t>{11, 90, 400, 500, 2}));
  EXPECT_EQ(view.samples()[1].value, 1003u);
  EXPECT_EQ(view.sequence(), 2u);
}

}  // namespace
}  // namespace approx::svc
