// Integration tests: whole-stack scenarios combining the workload driver,
// history recording, the linearizability checkers and several objects at
// once — the closest thing to "the system in production".
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "base/kmath.hpp"
#include "core/approx.hpp"
#include "sim/adapters.hpp"
#include "sim/history.hpp"
#include "sim/lin_check.hpp"
#include "sim/perturbation.hpp"
#include "sim/workload.hpp"

namespace approx {
namespace {

// Every counter implementation, driven by the same workload through the
// common interface, must produce a history its accuracy contract accepts.
class AllCountersLinearizable
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
 public:
  static std::unique_ptr<sim::ICounter> make(const std::string& which,
                                             unsigned n) {
    if (which == "kmult") {
      return std::make_unique<sim::KMultCounterAdapter>(
          n, std::max<std::uint64_t>(2, base::ceil_sqrt(n)));
    }
    if (which == "kmult_fix") {
      return std::make_unique<sim::KMultCounterCorrectedAdapter>(
          n, std::max<std::uint64_t>(2, base::ceil_sqrt(n)));
    }
    if (which == "collect") {
      return std::make_unique<sim::CollectCounterAdapter>(n);
    }
    if (which == "aach") {
      return std::make_unique<sim::AachCounterAdapter>(n);
    }
    if (which == "fetch_add") {
      return std::make_unique<sim::FetchAddCounterAdapter>();
    }
    return nullptr;
  }
};

TEST_P(AllCountersLinearizable, WorkloadHistoryPassesChecker) {
  const auto [which, seed] = GetParam();
  constexpr unsigned kThreads = 4;
  auto counter = make(which, kThreads);
  ASSERT_NE(counter, nullptr);

  sim::HistoryRecorder history(kThreads);
  // Warm the faithful k-mult counter past its bootstrap transient (a
  // documented deviation of the paper's algorithm; the corrected variant
  // needs no warmup). Warmup increments are recorded for the checker.
  if (which == "kmult") {
    for (unsigned i = 0; i < 64 * kThreads; ++i) {
      const unsigned pid = i % kThreads;
      history.record_increment(pid, [&] { counter->increment(pid); });
    }
  }
  sim::WorkloadConfig config;
  config.num_threads = kThreads;
  config.ops_per_thread = 1200;
  config.read_fraction = 0.25;
  config.seed = seed;
  run_counter_workload(*counter, config, &history);

  const auto result =
      sim::check_counter_history(history.merged(), counter->k());
  EXPECT_TRUE(result.ok) << which << ": " << result.violation;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AllCountersLinearizable,
    ::testing::Combine(::testing::Values("kmult", "kmult_fix", "collect",
                                         "aach", "fetch_add"),
                       ::testing::Values<std::uint64_t>(1, 2)));

// Same for every max-register implementation.
class AllMaxRegistersLinearizable
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
 public:
  static std::unique_ptr<sim::IMaxRegister> make(const std::string& which) {
    const std::uint64_t m = 1 << 20;
    if (which == "kmult_bounded") {
      return std::make_unique<sim::KMultMaxRegisterAdapter>(m, 3);
    }
    if (which == "kmult_unbounded") {
      return std::make_unique<sim::KMultUnboundedMaxRegisterAdapter>(3);
    }
    if (which == "exact_bounded") {
      return std::make_unique<sim::ExactBoundedMaxRegisterAdapter>(m);
    }
    if (which == "exact_unbounded") {
      return std::make_unique<sim::ExactUnboundedMaxRegisterAdapter>();
    }
    return nullptr;
  }
};

TEST_P(AllMaxRegistersLinearizable, WorkloadHistoryPassesChecker) {
  const auto [which, seed] = GetParam();
  constexpr unsigned kThreads = 4;
  auto reg = make(which);
  ASSERT_NE(reg, nullptr);

  sim::HistoryRecorder history(kThreads);
  sim::WorkloadConfig config;
  config.num_threads = kThreads;
  config.ops_per_thread = 1000;
  config.read_fraction = 0.4;
  config.seed = seed;
  config.max_write_value = (1 << 20) - 1;
  run_max_register_workload(*reg, config, &history);

  const auto result =
      sim::check_max_register_history(history.merged(), reg->k());
  EXPECT_TRUE(result.ok) << which << ": " << result.violation;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AllMaxRegistersLinearizable,
    ::testing::Combine(::testing::Values("kmult_bounded", "kmult_unbounded",
                                         "exact_bounded", "exact_unbounded"),
                       ::testing::Values<std::uint64_t>(3, 4)));

// Cross-object scenario: approximate counter + approximate max register
// driven from the same threads (telemetry-style: count events, track the
// high-watermark). Both histories must verify.
TEST(CrossObject, CounterAndMaxRegisterTogether) {
  constexpr unsigned kThreads = 4;
  const std::uint64_t k = 2;
  // The corrected counter variant holds the band from the first
  // increment, so no warmup is needed here.
  core::KMultCounterCorrected counter(kThreads, k);
  core::KMultUnboundedMaxRegister watermark(k);
  sim::HistoryRecorder counter_history(kThreads);
  sim::HistoryRecorder maxreg_history(kThreads);

  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (unsigned pid = 0; pid < kThreads; ++pid) {
    threads.emplace_back([&, pid] {
      sim::Rng rng(pid * 7919 + 3);
      while (!go.load(std::memory_order_acquire)) {}
      for (int i = 0; i < 2000; ++i) {
        const std::uint64_t size = rng.log_uniform(1 << 24);
        counter_history.record_increment(pid,
                                         [&] { counter.increment(pid); });
        maxreg_history.record_write(pid, size, [&] { watermark.write(size); });
        if (i % 10 == 0) {
          counter_history.record_read(pid, [&] { return counter.read(pid); });
          maxreg_history.record_read(pid, [&] { return watermark.read(); });
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();

  const auto counter_result =
      sim::check_counter_history(counter_history.merged(), k);
  EXPECT_TRUE(counter_result.ok) << counter_result.violation;
  const auto maxreg_result =
      sim::check_max_register_history(maxreg_history.merged(), k);
  EXPECT_TRUE(maxreg_result.ok) << maxreg_result.violation;
}

// Long-running soak: one k-mult counter, alternating phases of bursty
// increments and read-heavy traffic; band re-verified at every quiescent
// point between phases.
TEST(Soak, PhasedWorkloadQuiescentBands) {
  constexpr unsigned kThreads = 4;
  const std::uint64_t k = 2;
  sim::KMultCounterAdapter counter(kThreads, k);
  std::uint64_t expected = 0;
  for (int phase = 0; phase < 6; ++phase) {
    sim::WorkloadConfig config;
    config.num_threads = kThreads;
    config.ops_per_thread = 3000;
    config.read_fraction = (phase % 2 == 0) ? 0.05 : 0.7;
    config.seed = static_cast<std::uint64_t>(phase) + 1;
    const sim::WorkloadResult result = run_counter_workload(counter, config);
    expected += result.increments;
    for (unsigned pid = 0; pid < kThreads; ++pid) {
      const std::uint64_t x = counter.read(pid);
      ASSERT_TRUE(core::within_mult_band(x, expected, k))
          << "phase " << phase << " pid " << pid << " v=" << expected
          << " x=" << x;
    }
  }
}

// The perturbation harness driven through the adapters end-to-end, with
// the k-mult and exact registers side by side (the E6 experiment's core).
TEST(PerturbationIntegration, SeparationVisible) {
  const std::uint64_t k = 2;
  const std::uint64_t m = std::uint64_t{1} << 40;
  sim::KMultMaxRegisterAdapter approx_reg(m, k);
  sim::ExactBoundedMaxRegisterAdapter exact_reg(m);
  const auto approx_series = sim::perturb_max_register(approx_reg, k, m);
  const auto exact_series = sim::perturb_max_register(exact_reg, k, m);
  ASSERT_FALSE(approx_series.empty());
  ASSERT_FALSE(exact_series.empty());
  // Identical schedules.
  ASSERT_EQ(approx_series.size(), exact_series.size());
  // Final-round separation: exact pays ≥ log₂ v, approximate stays ≤
  // ⌈log₂ log₂ m⌉ + 1.
  EXPECT_GT(exact_series.back().read_steps,
            4 * approx_series.back().read_steps);
}

}  // namespace
}  // namespace approx
