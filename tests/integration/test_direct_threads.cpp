// Real-thread (non-stepper) smoke tests for the DirectBackend path.
//
// The sim suite exercises the algorithms under deterministic
// InstrumentedBackend interleavings; this suite runs the *production*
// instantiations under genuine OS-scheduled contention. It is the suite
// the ThreadSanitizer CI job targets: DirectBackend removes the TLS
// instrumentation, so any data race it reports is a race in the
// algorithms themselves.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "base/backend.hpp"
#include "core/approx.hpp"
#include "core/kmult_counter.hpp"
#include "core/kmult_counter_corrected.hpp"
#include "core/kmult_max_register.hpp"
#include "exact/collect_counter.hpp"

namespace approx {
namespace {

constexpr unsigned kThreads = 4;
constexpr std::uint64_t kIncsPerThread = 20'000;

// Launches one thread per pid, synchronized start.
template <typename Body>
void run_threads(unsigned num_threads, Body&& body) {
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (unsigned pid = 0; pid < num_threads; ++pid) {
    threads.emplace_back([&, pid] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      body(pid);
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
}

// Sequential reads by one process may regress, but only within the
// band: for exact counts v1 <= v2 at the two linearization points,
// x1 <= k*v1 and x2 >= v2/k >= v1/k >= x1/k^2. A regression beyond k^2
// (e.g. via a stale helping return) would violate linearizability.
bool band_consistent(std::uint64_t previous, std::uint64_t next,
                     std::uint64_t k) {
  return next * k * k >= previous;
}

template <typename Counter>
void increment_flood_and_check(Counter& counter, std::uint64_t k) {
  std::atomic<std::uint64_t> band_regressions{0};
  run_threads(kThreads, [&](unsigned pid) {
    std::uint64_t previous = 0;
    for (std::uint64_t i = 0; i < kIncsPerThread; ++i) {
      counter.increment(pid);
      if (i % 512 == 0) {
        const std::uint64_t x = counter.read(pid);
        if (!band_consistent(previous, x, k)) band_regressions.fetch_add(1);
        previous = x;
      }
    }
  });
  EXPECT_EQ(band_regressions.load(), 0u);
  // Quiescent read: the exact count is known, the band must hold.
  const std::uint64_t v = kThreads * kIncsPerThread;
  const std::uint64_t x = counter.read(0);
  EXPECT_TRUE(core::within_mult_band(x, v, k))
      << "x = " << x << " outside [" << v / k << ", " << v * k << "]";
}

TEST(DirectThreadsSmoke, KMultCounterUnderContention) {
  core::KMultCounterT<base::DirectBackend> counter(kThreads, 2);
  increment_flood_and_check(counter, 2);
}

TEST(DirectThreadsSmoke, KMultCounterCorrectedUnderContention) {
  core::KMultCounterCorrectedT<base::DirectBackend> counter(kThreads, 2);
  increment_flood_and_check(counter, 2);
}

TEST(DirectThreadsSmoke, CollectCounterIsExactAtQuiescence) {
  exact::CollectCounterT<base::DirectBackend> counter(kThreads);
  run_threads(kThreads, [&](unsigned pid) {
    for (std::uint64_t i = 0; i < kIncsPerThread; ++i) {
      counter.increment(pid);
      if (i % 1024 == 0) (void)counter.read();
    }
  });
  EXPECT_EQ(counter.read(), kThreads * kIncsPerThread);
}

TEST(DirectThreadsSmoke, KMultMaxRegisterUnderContention) {
  constexpr std::uint64_t kM = std::uint64_t{1} << 30;
  constexpr std::uint64_t kK = 3;
  core::KMultMaxRegisterT<base::DirectBackend> reg(kM, kK);
  std::atomic<std::uint64_t> band_failures{0};
  run_threads(kThreads, [&](unsigned pid) {
    std::uint64_t max_written = 0;
    for (std::uint64_t i = 1; i <= kIncsPerThread; ++i) {
      const std::uint64_t value = (i * (pid + 1)) % kM;
      reg.write(value);
      max_written = std::max(max_written, value);
      if (i % 256 == 0) {
        // The register's maximum is at least this thread's own maximum;
        // the read may only overshoot by the band factor.
        const std::uint64_t x = reg.read();
        if (x != 0 && max_written != 0 &&
            x * kK < max_written) {  // x < own_max / k: impossible
          band_failures.fetch_add(1);
        }
      }
    }
  });
  EXPECT_EQ(band_failures.load(), 0u);
}

TEST(DirectThreadsSmoke, ReadersProgressUnderWriterFlood) {
  // Wait-freedom smoke: a dedicated reader completes a fixed number of
  // reads while writers flood increments nonstop.
  core::KMultCounterCorrectedT<base::DirectBackend> counter(kThreads, 2);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (unsigned pid = 0; pid + 1 < kThreads; ++pid) {
    writers.emplace_back([&, pid] {
      while (!stop.load(std::memory_order_acquire)) counter.increment(pid);
    });
  }
  // Wait until the flood is actually visible: the reader can otherwise
  // finish its whole loop before the writer threads are even scheduled.
  while (counter.read(kThreads - 1) == 0) std::this_thread::yield();
  std::uint64_t previous = 0;
  std::uint64_t band_regressions = 0;
  for (int i = 0; i < 50'000; ++i) {
    const std::uint64_t x = counter.read(kThreads - 1);
    // Helping returns may regress within the band (see band_consistent);
    // anything beyond k^2 would be a linearizability violation.
    if (!band_consistent(previous, x, 2)) ++band_regressions;
    previous = x;
  }
  stop.store(true, std::memory_order_release);
  for (auto& writer : writers) writer.join();
  EXPECT_EQ(band_regressions, 0u);
  EXPECT_GT(previous, 0u);
}

}  // namespace
}  // namespace approx
