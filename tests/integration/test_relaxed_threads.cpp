// Real-thread smoke tests for the RelaxedDirectBackend path — one per
// relaxed algorithm.
//
// The memory-order policy (base/backend.hpp) maps each primitive site's
// OrderRole to the weakest ordering its algorithm's audit claims is
// sufficient. This suite is the race check for those claims: it runs the
// relaxed instantiations under genuine OS-scheduled contention, and the
// ThreadSanitizer CI job (which targets "integration") verifies that
// every release/acquire pairing the audits rely on actually exists —
// a mis-mapped role (e.g. a relaxed load where an acquire is needed to
// see a published record) surfaces as a TSan happens-before violation
// here. The assertions themselves re-check the quiescent/banded
// correctness facts alongside.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "base/backend.hpp"
#include "core/approx.hpp"
#include "core/kadditive_counter.hpp"
#include "core/kmult_counter.hpp"
#include "core/kmult_counter_corrected.hpp"
#include "core/kmult_max_register.hpp"
#include "core/kmult_unbounded_max_register.hpp"
#include "exact/aach_counter.hpp"
#include "exact/bounded_max_register.hpp"
#include "exact/collect_counter.hpp"
#include "exact/fetch_add_counter.hpp"
#include "exact/snapshot_counter.hpp"
#include "exact/unbounded_max_register.hpp"
#include "shard/aggregator.hpp"
#include "shard/registry.hpp"
#include "shard/sharded_counter.hpp"

namespace approx {
namespace {

using base::RelaxedDirectBackend;

constexpr unsigned kThreads = 4;
constexpr std::uint64_t kIncsPerThread = 20'000;

// Launches one thread per pid, synchronized start.
template <typename Body>
void run_threads(unsigned num_threads, Body&& body) {
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (unsigned pid = 0; pid < num_threads; ++pid) {
    threads.emplace_back([&, pid] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      body(pid);
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
}

// See tests/integration/test_direct_threads.cpp: sequential reads by one
// process may regress only within the k² band.
bool band_consistent(std::uint64_t previous, std::uint64_t next,
                     std::uint64_t k) {
  return next * k * k >= previous;
}

template <typename Counter>
void increment_flood_and_check(Counter& counter, std::uint64_t k) {
  std::atomic<std::uint64_t> band_regressions{0};
  run_threads(kThreads, [&](unsigned pid) {
    std::uint64_t previous = 0;
    for (std::uint64_t i = 0; i < kIncsPerThread; ++i) {
      counter.increment(pid);
      if (i % 512 == 0) {
        const std::uint64_t x = counter.read(pid);
        if (!band_consistent(previous, x, k)) band_regressions.fetch_add(1);
        previous = x;
      }
    }
  });
  EXPECT_EQ(band_regressions.load(), 0u);
  const std::uint64_t v = kThreads * kIncsPerThread;
  const std::uint64_t x = counter.read(0);
  EXPECT_TRUE(core::within_mult_band(x, v, k))
      << "x = " << x << " outside [" << v / k << ", " << v * k << "]";
}

TEST(RelaxedThreadsSmoke, KMultCounterUnderContention) {
  core::KMultCounterT<RelaxedDirectBackend> counter(kThreads, 2);
  increment_flood_and_check(counter, 2);
}

TEST(RelaxedThreadsSmoke, KMultCounterCorrectedUnderContention) {
  core::KMultCounterCorrectedT<RelaxedDirectBackend> counter(kThreads, 2);
  increment_flood_and_check(counter, 2);
}

TEST(RelaxedThreadsSmoke, ReadFastUnderWriterFlood) {
  // The binary-search read shares the helping handshake (release H-write
  // / acquire H-read) with the linear read; flood it.
  core::KMultCounterCorrectedT<RelaxedDirectBackend> counter(kThreads, 2);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (unsigned pid = 0; pid + 1 < kThreads; ++pid) {
    writers.emplace_back([&, pid] {
      while (!stop.load(std::memory_order_acquire)) counter.increment(pid);
    });
  }
  while (counter.read_fast(kThreads - 1) == 0) std::this_thread::yield();
  std::uint64_t previous = 0;
  std::uint64_t band_regressions = 0;
  for (int i = 0; i < 30'000; ++i) {
    const std::uint64_t x = counter.read_fast(kThreads - 1);
    if (!band_consistent(previous, x, 2)) ++band_regressions;
    previous = x;
  }
  stop.store(true, std::memory_order_release);
  for (auto& writer : writers) writer.join();
  EXPECT_EQ(band_regressions, 0u);
  EXPECT_GT(previous, 0u);
}

TEST(RelaxedThreadsSmoke, CollectCounterIsExactAtQuiescence) {
  exact::CollectCounterT<RelaxedDirectBackend> counter(kThreads);
  run_threads(kThreads, [&](unsigned pid) {
    for (std::uint64_t i = 0; i < kIncsPerThread; ++i) {
      counter.increment(pid);
      if (i % 1024 == 0) (void)counter.read();
    }
  });
  EXPECT_EQ(counter.read(), kThreads * kIncsPerThread);
}

TEST(RelaxedThreadsSmoke, KAdditiveCounterStaysInBandAndFlushesExact) {
  const std::uint64_t k = 64;
  core::KAdditiveCounterT<RelaxedDirectBackend> counter(kThreads, k);
  std::atomic<std::uint64_t> band_failures{0};
  run_threads(kThreads, [&](unsigned pid) {
    std::uint64_t mine = 0;
    for (std::uint64_t i = 0; i < kIncsPerThread; ++i) {
      counter.increment(pid);
      ++mine;
      if (i % 512 == 0) {
        // Own increments minus the k hideable ones must be visible.
        const std::uint64_t x = counter.read();
        if (base::sat_add(x, k) < mine) band_failures.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(band_failures.load(), 0u);
  for (unsigned pid = 0; pid < kThreads; ++pid) counter.flush(pid);
  EXPECT_EQ(counter.read(), kThreads * kIncsPerThread);
}

TEST(RelaxedThreadsSmoke, FetchAddCounterIsExactAtQuiescence) {
  exact::FetchAddCounterT<RelaxedDirectBackend> counter;
  run_threads(kThreads, [&](unsigned) {
    for (std::uint64_t i = 0; i < kIncsPerThread; ++i) {
      counter.increment();
      if (i % 1024 == 0) (void)counter.read();
    }
  });
  EXPECT_EQ(counter.read(), kThreads * kIncsPerThread);
}

TEST(RelaxedThreadsSmoke, AachCounterIsExactAtQuiescence) {
  exact::AachCounterT<RelaxedDirectBackend> counter(kThreads);
  const std::uint64_t incs = 2'000;  // polylog ops are costlier; keep tight
  run_threads(kThreads, [&](unsigned pid) {
    for (std::uint64_t i = 0; i < incs; ++i) {
      counter.increment(pid);
      if (i % 128 == 0) (void)counter.read();
    }
  });
  EXPECT_EQ(counter.read(), kThreads * incs);
}

TEST(RelaxedThreadsSmoke, SnapshotCounterIsExactAtQuiescence) {
  exact::SnapshotCounterT<RelaxedDirectBackend> counter(kThreads);
  const std::uint64_t incs = 2'000;  // embedded scans are quadratic
  run_threads(kThreads, [&](unsigned pid) {
    for (std::uint64_t i = 0; i < incs; ++i) {
      counter.increment(pid);
      if (i % 64 == 0) (void)counter.read();
    }
  });
  EXPECT_EQ(counter.read(), kThreads * incs);
}

TEST(RelaxedThreadsSmoke, BoundedMaxRegisterNeverLosesOwnMax) {
  constexpr std::uint64_t kM = std::uint64_t{1} << 24;
  exact::BoundedMaxRegisterT<RelaxedDirectBackend> reg(kM);
  std::atomic<std::uint64_t> lost_writes{0};
  run_threads(kThreads, [&](unsigned pid) {
    std::uint64_t own_max = 0;
    for (std::uint64_t i = 1; i <= kIncsPerThread; ++i) {
      const std::uint64_t value = (i * 2654435761u + pid) % kM;
      reg.write(value);
      own_max = std::max(own_max, value);
      if (i % 128 == 0 && reg.read() < own_max) lost_writes.fetch_add(1);
    }
  });
  EXPECT_EQ(lost_writes.load(), 0u);
  EXPECT_GT(reg.read(), 0u);
}

TEST(RelaxedThreadsSmoke, UnboundedMaxRegisterNeverLosesOwnMax) {
  exact::UnboundedMaxRegisterT<RelaxedDirectBackend> reg;
  std::atomic<std::uint64_t> lost_writes{0};
  run_threads(kThreads, [&](unsigned pid) {
    std::uint64_t own_max = 0;
    for (std::uint64_t i = 1; i <= 10'000; ++i) {
      const std::uint64_t value = i * (pid + 1) * 977u;
      reg.write(value);
      own_max = std::max(own_max, value);
      if (i % 128 == 0 && reg.read() < own_max) lost_writes.fetch_add(1);
    }
  });
  EXPECT_EQ(lost_writes.load(), 0u);
}

TEST(RelaxedThreadsSmoke, KMultMaxRegistersStayBanded) {
  constexpr std::uint64_t kM = std::uint64_t{1} << 30;
  constexpr std::uint64_t kK = 3;
  core::KMultMaxRegisterT<RelaxedDirectBackend> bounded(kM, kK);
  core::KMultUnboundedMaxRegisterT<RelaxedDirectBackend> unbounded(kK);
  std::atomic<std::uint64_t> band_failures{0};
  run_threads(kThreads, [&](unsigned pid) {
    std::uint64_t own_max = 0;
    for (std::uint64_t i = 1; i <= kIncsPerThread; ++i) {
      const std::uint64_t value = (i * (pid + 1)) % kM;
      bounded.write(value);
      unbounded.write(value);
      own_max = std::max(own_max, value);
      if (i % 256 == 0 && own_max != 0) {
        // x < own_max / k is impossible for a k-banded max register.
        if (bounded.read() * kK < own_max) band_failures.fetch_add(1);
        if (unbounded.read() * kK < own_max) band_failures.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(band_failures.load(), 0u);
}

TEST(RelaxedThreadsSmoke, ShardedCounterUnderContention) {
  shard::ShardedCounterT<core::KMultCounterCorrectedT, RelaxedDirectBackend>
      counter(kThreads, 2, 2);
  increment_flood_and_check(counter, 2);
}

TEST(RelaxedThreadsSmoke, RegistryAndAggregatorFleet) {
  // The full relaxed telemetry stack: racing get-or-create workers, a
  // background aggregator on its own pid, release/acquire frame
  // publication observed from the workers.
  shard::RegistryT<RelaxedDirectBackend> fleet(kThreads + 1);
  shard::AggregatorT<RelaxedDirectBackend> aggregator(fleet, kThreads);
  aggregator.start(std::chrono::milliseconds(1));
  run_threads(kThreads, [&](unsigned pid) {
    for (std::uint64_t i = 0; i < 5'000; ++i) {
      shard::AnyCounter& mult = fleet.create(
          "m", {shard::ErrorModel::kMultiplicative, 2, 2});
      shard::AnyCounter& exact_counter =
          fleet.create("x", {shard::ErrorModel::kExact, 0, 2});
      mult.increment(pid);
      exact_counter.increment(pid);
      if (i % 512 == 0) {
        const std::uint64_t seen = aggregator.frames_collected();
        (void)seen;
        (void)aggregator.latest();
      }
    }
  });
  aggregator.stop();
  const shard::TelemetryFrame frame = aggregator.collect();
  ASSERT_EQ(frame.samples.size(), 2u);
  const std::uint64_t total = kThreads * 5'000;
  EXPECT_TRUE(core::within_mult_band(frame.samples[0].value, total,
                                     frame.samples[0].error_bound));
  EXPECT_EQ(frame.samples[1].value, total);
}

}  // namespace
}  // namespace approx
