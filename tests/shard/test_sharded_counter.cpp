// Unit tests for the sharding layer (src/shard/sharded_counter.hpp):
// routing, compact vs full-width layout, error-bound composition and
// quiescent accuracy for every underlying counter family.
#include <gtest/gtest.h>

#include <cstdint>

#include "base/backend.hpp"
#include "core/approx.hpp"
#include "shard/sharded_counter.hpp"

namespace approx::shard {
namespace {

using base::InstrumentedBackend;

using ShardedKMult = ShardedCounterT<core::KMultCounterCorrectedT>;
using ShardedKAdd = ShardedCounterT<core::KAdditiveCounterT>;
using ShardedFetchAdd = ShardedCounterT<exact::FetchAddCounterT>;
using ShardedSnapshot = ShardedCounterT<exact::SnapshotCounterT>;
using ShardedCollect = ShardedCounterT<exact::CollectCounterT>;

TEST(ShardedCounter, ErrorModelAndBoundComposition) {
  // Multiplicative: the band survives summation — bound is k, any S.
  ShardedKMult mult(8, 3, 4);
  EXPECT_EQ(mult.error_model(), ErrorModel::kMultiplicative);
  EXPECT_EQ(mult.error_bound(), 3u);

  // Additive: ±k per shard accumulates to ±S·k.
  ShardedKAdd add(8, 16, 4);
  EXPECT_EQ(add.error_model(), ErrorModel::kAdditive);
  EXPECT_EQ(add.error_bound(), 64u);

  // Exact shards stay exact.
  ShardedFetchAdd exact(8, 0, 4);
  EXPECT_EQ(exact.error_model(), ErrorModel::kExact);
  EXPECT_EQ(exact.error_bound(), 0u);
}

TEST(ShardedCounter, ShardCountClampedToPidSpace) {
  ShardedFetchAdd counter(3, 0, 16);
  EXPECT_EQ(counter.num_shards(), 3u);
  ShardedFetchAdd one(3, 0, 0);
  EXPECT_EQ(one.num_shards(), 1u);
}

TEST(ShardedCounter, LayoutSelection) {
  // read(pid) counters must be full-width; pid-less readers are compact
  // under BOTH policies — the remap table routes round-robin slot
  // increments onto the home cell, so rotation no longer forces full
  // width.
  ShardedKMult mult(8, 3, 4);
  EXPECT_FALSE(mult.compact());
  EXPECT_EQ(mult.shard(0).num_processes(), 8u);

  ShardedSnapshot pinned(8, 0, 4);
  EXPECT_TRUE(pinned.compact());
  EXPECT_EQ(pinned.shard(0).num_processes(), 2u);

  ShardedSnapshot rotating(8, 0, 4, ShardPolicy::kRoundRobin);
  EXPECT_TRUE(rotating.compact());
  EXPECT_EQ(rotating.shard(0).num_processes(), 2u);
}

TEST(ShardedCounter, RemapTableRoutesRoundRobinSlotsToHomeCell) {
  // Slot-owning counters under round-robin: every increment lands in the
  // pid's compact home cell (single-writer slots have no contention to
  // rotate away), so the sum stays exact and shard loads mirror the
  // pinned layout.
  ShardedCollect counter(8, 0, 4, ShardPolicy::kRoundRobin);
  ASSERT_TRUE(counter.compact());
  for (int round = 0; round < 10; ++round) {
    counter.increment(5);  // home shard 1, local slot 1
    counter.increment(1);  // home shard 1, local slot 0
    counter.increment(2);  // home shard 2, local slot 0
  }
  EXPECT_EQ(counter.shard(1).read(), 20u);
  EXPECT_EQ(counter.shard(2).read(), 10u);
  EXPECT_EQ(counter.shard(0).read(), 0u);
  EXPECT_EQ(counter.shard(3).read(), 0u);
  EXPECT_EQ(counter.read(0), 30u);
}

TEST(ShardedCounter, RoundRobinBatchingCounterFlushesHomeCellOnly) {
  // The k-additive counter batches locally; with the remap table its
  // batches live only in the home cell, so one flush per pid makes a
  // quiescent round-robin read exact.
  ShardedKAdd counter(8, 32, 4, ShardPolicy::kRoundRobin);
  ASSERT_TRUE(counter.compact());
  for (unsigned pid = 0; pid < 8; ++pid) {
    for (int i = 0; i < 3; ++i) counter.increment(pid);
  }
  for (unsigned pid = 0; pid < 8; ++pid) counter.flush(pid);
  EXPECT_EQ(counter.read(0), 24u);
}

TEST(ShardedCounter, CompactBucketsCoverUnevenPidSpaces) {
  // n = 7, S = 3: buckets {0,3,6}, {1,4}, {2,5} — sizes 3, 2, 2.
  ShardedCollect counter(7, 0, 3);
  ASSERT_TRUE(counter.compact());
  EXPECT_EQ(counter.bucket_size(0), 3u);
  EXPECT_EQ(counter.bucket_size(1), 2u);
  EXPECT_EQ(counter.bucket_size(2), 2u);
  for (unsigned pid = 0; pid < 7; ++pid) {
    EXPECT_EQ(counter.home_shard(pid), pid % 3);
    EXPECT_EQ(counter.local_pid(pid), pid / 3);
    EXPECT_LT(counter.local_pid(pid),
              counter.bucket_size(counter.home_shard(pid)));
  }
}

TEST(ShardedCounter, HashPinnedRoutesToHomeShard) {
  ShardedFetchAdd counter(8, 0, 4);
  counter.increment(5);  // home shard 5 % 4 = 1
  counter.increment(5);
  counter.increment(2);  // home shard 2
  EXPECT_EQ(counter.shard(1).read(), 2u);
  EXPECT_EQ(counter.shard(2).read(), 1u);
  EXPECT_EQ(counter.shard(0).read(), 0u);
  EXPECT_EQ(counter.shard(3).read(), 0u);
  EXPECT_EQ(counter.read(0), 3u);
}

TEST(ShardedCounter, RoundRobinSpreadsOnePidEvenly) {
  ShardedFetchAdd counter(8, 0, 4, ShardPolicy::kRoundRobin);
  for (int i = 0; i < 100; ++i) counter.increment(0);
  for (unsigned s = 0; s < 4; ++s) {
    EXPECT_EQ(counter.shard(s).read(), 25u) << "shard " << s;
  }
  EXPECT_EQ(counter.read(0), 100u);
}

TEST(ShardedCounter, ExactShardingIsExactSequentially) {
  for (const unsigned shards : {1u, 2u, 3u, 8u}) {
    ShardedSnapshot counter(8, 0, shards);
    std::uint64_t v = 0;
    for (unsigned round = 0; round < 50; ++round) {
      for (unsigned pid = 0; pid < 8; ++pid) {
        counter.increment(pid);
        ++v;
      }
      ASSERT_EQ(counter.read(round % 8), v) << "S=" << shards;
    }
  }
}

TEST(ShardedCounter, MultiplicativeShardingStaysInComposedBand) {
  for (const unsigned shards : {1u, 2u, 4u}) {
    ShardedKMult counter(4, 2, shards);
    ASSERT_TRUE(counter.accuracy_guaranteed());
    std::uint64_t v = 0;
    for (std::uint64_t i = 1; i <= 4000; ++i) {
      counter.increment(static_cast<unsigned>(i % 4));
      ++v;
      if (i % 13 == 0) {
        const std::uint64_t x = counter.read(0);
        ASSERT_TRUE(core::within_mult_band(x, v, counter.error_bound()))
            << "S=" << shards << " v=" << v << " x=" << x;
      }
    }
  }
}

TEST(ShardedCounter, AdditiveShardingStaysInComposedBandAndFlushes) {
  for (const auto policy :
       {ShardPolicy::kHashPinned, ShardPolicy::kRoundRobin}) {
    ShardedKAdd counter(4, 16, 4, policy);
    std::uint64_t v = 0;
    for (std::uint64_t i = 1; i <= 2000; ++i) {
      counter.increment(static_cast<unsigned>(i % 4));
      ++v;
      if (i % 17 == 0) {
        const std::uint64_t x = counter.read(0);
        ASSERT_TRUE(core::within_add_band(x, v, counter.error_bound()))
            << "v=" << v << " x=" << x;
        ASSERT_LE(x, v);  // the additive construction never overcounts
      }
    }
    for (unsigned pid = 0; pid < 4; ++pid) counter.flush(pid);
    EXPECT_EQ(counter.read(0), v);  // quiescent flushed read is exact
  }
}

TEST(ShardedCounter, AccuracyPreconditionRelaxesWithPinnedSharding) {
  // 16 processes: a single instance needs k ≥ ⌈√16⌉ = 4, but 4 pinned
  // shards serve buckets of 4, needing only k ≥ 2. Round-robin keeps
  // the full-width requirement.
  ShardedKMult single(16, 2, 1);
  EXPECT_FALSE(single.accuracy_guaranteed());
  ShardedKMult pinned(16, 2, 4);
  EXPECT_TRUE(pinned.accuracy_guaranteed());
  ShardedKMult rotating(16, 2, 4, ShardPolicy::kRoundRobin);
  EXPECT_FALSE(rotating.accuracy_guaranteed());
  ShardedKMult rotating_big_k(16, 4, 4, ShardPolicy::kRoundRobin);
  EXPECT_TRUE(rotating_big_k.accuracy_guaranteed());
}

TEST(ShardedCounter, DirectBackendCompiles) {
  ShardedCounterT<core::KMultCounterCorrectedT, base::DirectBackend>
      counter(4, 2, 2);
  for (int i = 0; i < 100; ++i) counter.increment(0);
  EXPECT_TRUE(core::within_mult_band(counter.read(1), 100, 2));
}

}  // namespace
}  // namespace approx::shard
