// Accuracy-composition property tests: sharded counters driven under
// adversarial instrumented-sim schedules must keep every read inside
// the band the layer *reports* (error_bound()) — the satellite check
// that the composition math in shard/sharded_counter.hpp is real, not
// just documented.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "core/approx.hpp"
#include "sim/adapters.hpp"
#include "sim/history.hpp"
#include "sim/lin_check.hpp"
#include "sim/stepper.hpp"
#include "sim/workload.hpp"

namespace approx::shard {
namespace {

constexpr unsigned kN = 4;

/// Runs a seeded mixed workload over `counter` under the deterministic
/// step scheduler and returns the merged history.
std::vector<sim::OpRecord> run_adversarial(sim::ICounter& counter,
                                           std::uint64_t seed,
                                           int ops_per_pid) {
  sim::HistoryRecorder history(kN);
  std::vector<std::function<void()>> programs;
  for (unsigned pid = 0; pid < kN; ++pid) {
    programs.emplace_back([&, pid] {
      sim::Rng rng(seed * 131 + pid + 1);
      for (int i = 0; i < ops_per_pid; ++i) {
        if (rng.chance(0.25)) {
          history.record_read(pid, [&] { return counter.read(pid); });
        } else {
          history.record_increment(pid, [&] { counter.increment(pid); });
        }
      }
    });
  }
  sim::StepScheduler::run(std::move(programs), seed);
  return history.merged();
}

/// Window check for the additive band: every read must be within
/// ±bound of SOME increment count inside its real-time window
/// [completed-before-invoke, invoked-before-response] — the necessary
/// condition of k-additive linearizability (monotone counts make it
/// tight per read).
void expect_additive_window(const std::vector<sim::OpRecord>& history,
                            std::uint64_t bound, std::uint64_t seed) {
  for (const sim::OpRecord& read : history) {
    if (read.type != sim::OpType::kRead) continue;
    std::uint64_t completed_before = 0;
    std::uint64_t invoked_before = 0;
    for (const sim::OpRecord& inc : history) {
      if (inc.type != sim::OpType::kIncrement) continue;
      if (inc.response != 0 && inc.response < read.invoke) ++completed_before;
      if (inc.invoke < read.response) ++invoked_before;
    }
    // ∃ v ∈ [completed_before, invoked_before]: |x − v| ≤ bound.
    ASSERT_LE(completed_before,
              base::sat_add(read.result, bound))
        << "seed " << seed << ": read " << read.result
        << " too small for window [" << completed_before << ", "
        << invoked_before << "] ± " << bound;
    ASSERT_LE(read.result, base::sat_add(invoked_before, bound))
        << "seed " << seed << ": read " << read.result
        << " too large for window [" << completed_before << ", "
        << invoked_before << "] ± " << bound;
  }
}

class ShardedAccuracySweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ShardedAccuracySweep, MultiplicativeCompositionHolds) {
  const std::uint64_t seed = GetParam();
  for (const unsigned shards : {2u, 4u}) {
    for (const auto policy :
         {ShardPolicy::kHashPinned, ShardPolicy::kRoundRobin}) {
      sim::ShardedKMultCounterAdapter counter(kN, 2, shards, policy);
      ASSERT_EQ(counter.k(), 2u);  // composed bound == per-shard k
      const auto history = run_adversarial(counter, seed, 30);
      // The adapter reports the composed bound as its k, so the stock
      // k-multiplicative linearizability checker verifies exactly the
      // band error_bound() promises.
      const auto result = sim::check_counter_history(history, counter.k());
      ASSERT_TRUE(result.ok) << "seed " << seed << " S=" << shards << ": "
                             << result.violation;
    }
  }
}

TEST_P(ShardedAccuracySweep, AdditiveCompositionHolds) {
  const std::uint64_t seed = GetParam();
  for (const unsigned shards : {2u, 4u}) {
    for (const auto policy :
         {ShardPolicy::kHashPinned, ShardPolicy::kRoundRobin}) {
      sim::ShardedKAdditiveCounterAdapter counter(kN, 8, shards, policy);
      const std::uint64_t bound = counter.impl().error_bound();
      ASSERT_EQ(bound, std::uint64_t{8} * shards);
      const auto history = run_adversarial(counter, seed, 30);
      expect_additive_window(history, bound, seed);
    }
  }
}

TEST_P(ShardedAccuracySweep, ExactShardingStaysLinearizable) {
  const std::uint64_t seed = GetParam();
  for (const unsigned shards : {2u, 4u}) {
    sim::ShardedSnapshotCounterAdapter counter(kN, shards);
    const auto history = run_adversarial(counter, seed, 20);
    const auto result = sim::check_counter_history(history, 1);
    ASSERT_TRUE(result.ok) << "seed " << seed << " S=" << shards << ": "
                           << result.violation;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedAccuracySweep,
                         ::testing::Range<std::uint64_t>(0, 20));

// --- RelaxedDirectBackend: the stepper-free adversarial path ---------
//
// The relaxed build has no yield points, so the step scheduler cannot
// interleave it; instead real OS threads produce genuinely concurrent
// executions (including whatever weak-memory reordering the hardware
// performs) and the SAME oracles — the k-multiplicative lin-check and
// the additive window check — judge the merged history. The
// HistoryRecorder clock is a seq_cst fetch_add, so invoke/response
// stamps order in real time around the relaxed operations: any accuracy
// leak a mis-mapped memory-order role introduces shows up as a band
// violation here (and as a race in the TSan relaxed suite).

std::vector<sim::OpRecord> run_threads_history(sim::ICounter& counter,
                                               std::uint64_t seed,
                                               int ops_per_pid) {
  sim::HistoryRecorder history(kN);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kN);
  for (unsigned pid = 0; pid < kN; ++pid) {
    threads.emplace_back([&, pid] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      sim::Rng rng(seed * 131 + pid + 1);
      for (int i = 0; i < ops_per_pid; ++i) {
        if (rng.chance(0.25)) {
          history.record_read(pid, [&] { return counter.read(pid); });
        } else {
          history.record_increment(pid, [&] { counter.increment(pid); });
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  return history.merged();
}

class RelaxedShardedAccuracySweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RelaxedShardedAccuracySweep, MultiplicativeCompositionHolds) {
  const std::uint64_t seed = GetParam();
  for (const unsigned shards : {2u, 4u}) {
    for (const auto policy :
         {ShardPolicy::kHashPinned, ShardPolicy::kRoundRobin}) {
      sim::ShardedKMultCounterAdapterT<base::RelaxedDirectBackend> counter(
          kN, 2, shards, policy);
      const auto history = run_threads_history(counter, seed, 200);
      const auto result = sim::check_counter_history(history, counter.k());
      ASSERT_TRUE(result.ok) << "seed " << seed << " S=" << shards << ": "
                             << result.violation;
    }
  }
}

TEST_P(RelaxedShardedAccuracySweep, AdditiveCompositionHolds) {
  const std::uint64_t seed = GetParam();
  for (const unsigned shards : {2u, 4u}) {
    for (const auto policy :
         {ShardPolicy::kHashPinned, ShardPolicy::kRoundRobin}) {
      sim::ShardedKAdditiveCounterAdapterT<base::RelaxedDirectBackend>
          counter(kN, 8, shards, policy);
      const std::uint64_t bound = counter.impl().error_bound();
      const auto history = run_threads_history(counter, seed, 200);
      expect_additive_window(history, bound, seed);
    }
  }
}

TEST_P(RelaxedShardedAccuracySweep, ExactShardingStaysLinearizable) {
  const std::uint64_t seed = GetParam();
  for (const unsigned shards : {2u, 4u}) {
    sim::ShardedSnapshotCounterAdapterT<base::RelaxedDirectBackend> counter(
        kN, shards);
    const auto history = run_threads_history(counter, seed, 100);
    const auto result = sim::check_counter_history(history, 1);
    ASSERT_TRUE(result.ok) << "seed " << seed << " S=" << shards << ": "
                           << result.violation;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelaxedShardedAccuracySweep,
                         ::testing::Range<std::uint64_t>(0, 5));

// A starved reader must still return a banded value: the sharded read
// is a sequence of S wait-free shard reads, so wait-freedom survives
// composition (the weakest-fairness schedule the paper's claims are
// made under).
TEST(ShardedAccuracy, StarvedReaderStillBanded) {
  sim::ShardedKMultCounterAdapter counter(kN, 2, 2);
  sim::HistoryRecorder history(kN);
  std::vector<std::function<void()>> programs;
  for (unsigned pid = 0; pid + 1 < kN; ++pid) {
    programs.emplace_back([&, pid] {
      for (int i = 0; i < 60; ++i) {
        history.record_increment(pid, [&] { counter.increment(pid); });
      }
    });
  }
  programs.emplace_back([&] {
    for (int i = 0; i < 5; ++i) {
      history.record_read(kN - 1, [&] { return counter.read(kN - 1); });
    }
  });
  sim::StepScheduler::run(std::move(programs),
                          sim::StepScheduler::starvation_picker(kN - 1, 7));
  const auto result = sim::check_counter_history(history.merged(), 2);
  ASSERT_TRUE(result.ok) << result.violation;
}

}  // namespace
}  // namespace approx::shard
