// Tests for the telemetry registry (src/shard/registry.hpp) and the
// batching aggregator (src/shard/aggregator.hpp).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "base/backend.hpp"
#include "core/approx.hpp"
#include "shard/aggregator.hpp"
#include "shard/registry.hpp"

namespace approx::shard {
namespace {

TEST(Registry, CreateLookupAndMissing) {
  Registry registry(4);
  AnyCounter& requests =
      registry.create("requests", {ErrorModel::kMultiplicative, 2, 2});
  EXPECT_EQ(registry.lookup("requests"), &requests);
  EXPECT_EQ(registry.lookup("nope"), nullptr);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(Registry, CreateIsIdempotentFirstSpecWins) {
  Registry registry(4);
  AnyCounter& first =
      registry.create("hits", {ErrorModel::kMultiplicative, 2, 2});
  first.increment(0);
  AnyCounter& second =
      registry.create("hits", {ErrorModel::kAdditive, 64, 4});
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(second.error_model(), ErrorModel::kMultiplicative);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(Registry, SamplesCarryModelAndBound) {
  Registry registry(4);
  registry.create("m", {ErrorModel::kMultiplicative, 3, 2});
  registry.create("a", {ErrorModel::kAdditive, 8, 4});
  registry.create("x", {ErrorModel::kExact, 0, 4});
  const auto samples = registry.snapshot_all(0);
  ASSERT_EQ(samples.size(), 3u);  // name-sorted: a, m, x
  EXPECT_EQ(samples[0].name, "a");
  EXPECT_EQ(samples[0].model, ErrorModel::kAdditive);
  EXPECT_EQ(samples[0].error_bound, 32u);
  EXPECT_EQ(samples[1].name, "m");
  EXPECT_EQ(samples[1].model, ErrorModel::kMultiplicative);
  EXPECT_EQ(samples[1].error_bound, 3u);
  EXPECT_EQ(samples[2].name, "x");
  EXPECT_EQ(samples[2].model, ErrorModel::kExact);
  EXPECT_EQ(samples[2].error_bound, 0u);
  EXPECT_STREQ(error_model_name(samples[0].model), "add");
  EXPECT_STREQ(error_model_name(samples[1].model), "mult");
  EXPECT_STREQ(error_model_name(samples[2].model), "exact");
}

TEST(Registry, SnapshotAllValuesStayInReportedBand) {
  Registry registry(2);
  AnyCounter& mult =
      registry.create("mult", {ErrorModel::kMultiplicative, 2, 2});
  AnyCounter& exact = registry.create("exact", {ErrorModel::kExact, 0, 2});
  for (int i = 0; i < 500; ++i) {
    mult.increment(0);
    exact.increment(0);
  }
  for (const Sample& sample : registry.snapshot_all(1)) {
    if (sample.model == ErrorModel::kMultiplicative) {
      EXPECT_TRUE(core::within_mult_band(sample.value, 500,
                                         sample.error_bound))
          << sample.name << "=" << sample.value;
    } else {
      EXPECT_EQ(sample.value, 500u) << sample.name;
    }
  }
}

TEST(Registry, ConcurrentGetOrCreateYieldsOneCounterPerName) {
  // Racing workers lazily materializing the same names must converge on
  // one instance each (DirectBackend: real threads, no sim scheduler).
  RegistryT<base::DirectBackend> registry(8);
  constexpr unsigned kWorkers = 8;
  constexpr int kNames = 4;
  std::atomic<unsigned> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (unsigned pid = 0; pid < kWorkers; ++pid) {
    workers.emplace_back([&, pid] {
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < 200; ++i) {
        const std::string name = "ctr" + std::to_string(i % kNames);
        AnyCounter& counter = registry.create(
            name, {ErrorModel::kExact, 0, 4, ShardPolicy::kHashPinned});
        counter.increment(pid);
      }
    });
  }
  while (ready.load() < kWorkers) std::this_thread::yield();
  go.store(true);
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(registry.size(), static_cast<std::size_t>(kNames));
  std::uint64_t total = 0;
  for (const Sample& sample : registry.snapshot_all(0)) {
    total += sample.value;
  }
  EXPECT_EQ(total, std::uint64_t{kWorkers} * 200);
}

TEST(Aggregator, PullModeFramesAreSequencedAndSelfDescribing) {
  Registry registry(2);
  AnyCounter& hits =
      registry.create("hits", {ErrorModel::kMultiplicative, 2, 2});
  Aggregator aggregator(registry, 1);
  EXPECT_EQ(aggregator.latest().sequence, 0u);

  for (int i = 0; i < 100; ++i) hits.increment(0);
  const TelemetryFrame first = aggregator.collect();
  EXPECT_EQ(first.sequence, 1u);
  ASSERT_EQ(first.samples.size(), 1u);
  EXPECT_TRUE(core::within_mult_band(first.samples[0].value, 100,
                                     first.samples[0].error_bound));

  for (int i = 0; i < 100; ++i) hits.increment(0);
  const TelemetryFrame second = aggregator.collect();
  EXPECT_EQ(second.sequence, 2u);
  EXPECT_GE(second.samples[0].value, first.samples[0].value);
  EXPECT_EQ(aggregator.latest().sequence, 2u);
  EXPECT_EQ(aggregator.frames_collected(), 2u);
}

TEST(Aggregator, BackgroundModeCollectsWhileWorkersIncrement) {
  // DirectBackend: the background thread is a real thread with its own
  // dedicated pid (3); workers use pids 0..2.
  RegistryT<base::DirectBackend> registry(4);
  registry.create("events", {ErrorModel::kMultiplicative, 2, 2});
  AggregatorT<base::DirectBackend> aggregator(registry, 3);
  aggregator.start(std::chrono::milliseconds(1));

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> exact{0};
  for (unsigned pid = 0; pid < 3; ++pid) {
    workers.emplace_back([&, pid] {
      AnyCounter* counter = registry.lookup("events");
      ASSERT_NE(counter, nullptr);
      while (!stop.load(std::memory_order_acquire)) {
        counter->increment(pid);
        exact.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true, std::memory_order_release);
  for (auto& worker : workers) worker.join();
  aggregator.stop();

  EXPECT_GE(aggregator.frames_collected(), 2u);
  const TelemetryFrame frame = aggregator.latest();
  ASSERT_EQ(frame.samples.size(), 1u);
  // The final frame was collected at some point during the run: within
  // the mult band of some count ≤ the final exact total.
  EXPECT_LE(frame.samples[0].value / 2,
            exact.load(std::memory_order_relaxed) * 2);
  // A fresh post-quiescence collect is banded against the exact total.
  const TelemetryFrame last = aggregator.collect();
  EXPECT_TRUE(core::within_mult_band(last.samples[0].value, exact.load(),
                                     last.samples[0].error_bound));
}

}  // namespace
}  // namespace approx::shard
