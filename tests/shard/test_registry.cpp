// Tests for the telemetry registry (src/shard/registry.hpp) and the
// batching aggregator (src/shard/aggregator.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <map>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "base/backend.hpp"
#include "core/approx.hpp"
#include "shard/aggregator.hpp"
#include "shard/registry.hpp"

namespace approx::shard {
namespace {

TEST(Registry, CreateLookupAndMissing) {
  Registry registry(4);
  AnyCounter& requests =
      registry.create("requests", {ErrorModel::kMultiplicative, 2, 2});
  EXPECT_EQ(registry.lookup("requests"), &requests);
  EXPECT_EQ(registry.lookup("nope"), nullptr);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(Registry, CreateIsIdempotentFirstSpecWins) {
  Registry registry(4);
  AnyCounter& first =
      registry.create("hits", {ErrorModel::kMultiplicative, 2, 2});
  first.increment(0);
  AnyCounter& second =
      registry.create("hits", {ErrorModel::kAdditive, 64, 4});
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(second.error_model(), ErrorModel::kMultiplicative);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(Registry, SamplesCarryModelAndBound) {
  Registry registry(4);
  registry.create("m", {ErrorModel::kMultiplicative, 3, 2});
  registry.create("a", {ErrorModel::kAdditive, 8, 4});
  registry.create("x", {ErrorModel::kExact, 0, 4});
  const auto samples = registry.snapshot_all(0);
  ASSERT_EQ(samples.size(), 3u);  // name-sorted: a, m, x
  EXPECT_EQ(samples[0].name, "a");
  EXPECT_EQ(samples[0].model, ErrorModel::kAdditive);
  EXPECT_EQ(samples[0].error_bound, 32u);
  EXPECT_EQ(samples[1].name, "m");
  EXPECT_EQ(samples[1].model, ErrorModel::kMultiplicative);
  EXPECT_EQ(samples[1].error_bound, 3u);
  EXPECT_EQ(samples[2].name, "x");
  EXPECT_EQ(samples[2].model, ErrorModel::kExact);
  EXPECT_EQ(samples[2].error_bound, 0u);
  EXPECT_STREQ(error_model_name(samples[0].model), "add");
  EXPECT_STREQ(error_model_name(samples[1].model), "mult");
  EXPECT_STREQ(error_model_name(samples[2].model), "exact");
}

TEST(Registry, SnapshotAllValuesStayInReportedBand) {
  Registry registry(2);
  AnyCounter& mult =
      registry.create("mult", {ErrorModel::kMultiplicative, 2, 2});
  AnyCounter& exact = registry.create("exact", {ErrorModel::kExact, 0, 2});
  for (int i = 0; i < 500; ++i) {
    mult.increment(0);
    exact.increment(0);
  }
  for (const Sample& sample : registry.snapshot_all(1)) {
    if (sample.model == ErrorModel::kMultiplicative) {
      EXPECT_TRUE(core::within_mult_band(sample.value, 500,
                                         sample.error_bound))
          << sample.name << "=" << sample.value;
    } else {
      EXPECT_EQ(sample.value, 500u) << sample.name;
    }
  }
}

TEST(Registry, ConcurrentGetOrCreateYieldsOneCounterPerName) {
  // Racing workers lazily materializing the same names must converge on
  // one instance each (DirectBackend: real threads, no sim scheduler).
  RegistryT<base::DirectBackend> registry(8);
  constexpr unsigned kWorkers = 8;
  constexpr int kNames = 4;
  std::atomic<unsigned> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (unsigned pid = 0; pid < kWorkers; ++pid) {
    workers.emplace_back([&, pid] {
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < 200; ++i) {
        const std::string name = "ctr" + std::to_string(i % kNames);
        AnyCounter& counter = registry.create(
            name, {ErrorModel::kExact, 0, 4, ShardPolicy::kHashPinned});
        counter.increment(pid);
      }
    });
  }
  while (ready.load() < kWorkers) std::this_thread::yield();
  go.store(true);
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(registry.size(), static_cast<std::size_t>(kNames));
  std::uint64_t total = 0;
  for (const Sample& sample : registry.snapshot_all(0)) {
    total += sample.value;
  }
  EXPECT_EQ(total, std::uint64_t{kWorkers} * 200);
}

TEST(Registry, SnapshotAllIntoReusesStorageAndTracksVersion) {
  Registry registry(2);
  registry.create("b", {ErrorModel::kExact, 0, 2});
  registry.create("a", {ErrorModel::kExact, 0, 2});

  std::vector<Sample> frame;
  std::uint64_t version = registry.snapshot_all_into(0, frame, 0);
  ASSERT_EQ(frame.size(), 2u);
  EXPECT_EQ(frame[0].name, "a");  // flat table stays name-sorted
  EXPECT_EQ(frame[1].name, "b");
  EXPECT_EQ(version, registry.version());

  // Steady state: same version → values refreshed in place, constants
  // (and the samples' string storage) untouched.
  registry.lookup("a")->increment(0);
  const char* const name_storage = frame[0].name.data();
  const std::uint64_t same = registry.snapshot_all_into(0, frame, version);
  EXPECT_EQ(same, version);
  EXPECT_EQ(frame[0].name.data(), name_storage);
  EXPECT_EQ(frame[0].value, 1u);

  // A create bumps the version and the next pass re-fills the constants,
  // keeping the sorted order with the newcomer in place.
  registry.create("aa", {ErrorModel::kAdditive, 8, 2});
  const std::uint64_t bumped = registry.snapshot_all_into(0, frame, same);
  EXPECT_GT(bumped, same);
  ASSERT_EQ(frame.size(), 3u);
  EXPECT_EQ(frame[0].name, "a");
  EXPECT_EQ(frame[1].name, "aa");
  EXPECT_EQ(frame[1].model, ErrorModel::kAdditive);
  EXPECT_EQ(frame[1].error_bound, 16u);
  EXPECT_EQ(frame[2].name, "b");

  // The allocating form agrees with the in-place form.
  const auto allocated = registry.snapshot_all(0);
  ASSERT_EQ(allocated.size(), frame.size());
  for (std::size_t i = 0; i < frame.size(); ++i) {
    EXPECT_EQ(allocated[i].name, frame[i].name);
    EXPECT_EQ(allocated[i].value, frame[i].value);
  }
}

TEST(Registry, VersionsAreUniquePerRegistryInstance) {
  // Reusing a frame against a *different* registry must take the full
  // refresh path even when both registries hold equally many counters
  // after equally many creates — versions carry a per-instance nonce.
  Registry first(2);
  first.create("a", {ErrorModel::kExact, 0, 2});
  Registry second(2);
  second.create("z", {ErrorModel::kAdditive, 8, 2});
  ASSERT_NE(first.version(), second.version());

  std::vector<Sample> frame;
  const std::uint64_t from_first = first.snapshot_all_into(0, frame, 0);
  EXPECT_EQ(frame[0].name, "a");
  (void)second.snapshot_all_into(0, frame, from_first);
  EXPECT_EQ(frame[0].name, "z");  // refreshed, not stale "a"
  EXPECT_EQ(frame[0].model, ErrorModel::kAdditive);
}

TEST(Registry, ForEachChangedSinceYieldsEmptyDeltaOnUnchangedFleet) {
  // The delta channel's pinning contract (src/svc builds on this): a
  // sequenced pass over a fleet nothing incremented marks nothing
  // changed, so the walk since the previous pass visits zero entries —
  // the aggregator/service no longer re-encodes every entry every tick.
  Registry registry(2);
  AnyCounter& a = registry.create("a", {ErrorModel::kExact, 0, 1});
  registry.create("b", {ErrorModel::kExact, 0, 1});
  a.increment(0);

  std::vector<Sample> frame;
  std::uint64_t version = registry.snapshot_all_into_sequenced(0, frame, 0, 1);
  // Pass 1 baselines: every entry is new, so everything changed at 1.
  std::size_t visited = 0;
  auto upto = registry.for_each_changed_since(
      0, version,
      [&](std::size_t, const std::string&, std::uint64_t, std::uint64_t,
          const std::vector<std::uint64_t>*) { ++visited; });
  EXPECT_EQ(visited, 2u);
  ASSERT_TRUE(upto.has_value());
  EXPECT_EQ(*upto, 1u);  // the walk is complete up to pass 1

  // Pass 2 with an untouched fleet: the delta since pass 1 is EMPTY.
  version = registry.snapshot_all_into_sequenced(0, frame, version, 2);
  visited = 0;
  upto = registry.for_each_changed_since(
      1, version,
      [&](std::size_t, const std::string&, std::uint64_t, std::uint64_t,
          const std::vector<std::uint64_t>*) { ++visited; });
  EXPECT_EQ(visited, 0u);
  ASSERT_TRUE(upto.has_value());
  EXPECT_EQ(*upto, 2u);

  // One increment: pass 3's delta names exactly that entry, with the
  // collected value and the changing pass's sequence.
  a.increment(0);
  (void)registry.snapshot_all_into_sequenced(0, frame, version, 3);
  upto = registry.for_each_changed_since(
      2, version,
      [&](std::size_t index, const std::string& name, std::uint64_t value,
          std::uint64_t changed_seq, const std::vector<std::uint64_t>* counts) {
        ++visited;
        EXPECT_EQ(index, 0u);  // "a" sorts first
        EXPECT_EQ(name, "a");
        EXPECT_EQ(value, 2u);
        EXPECT_EQ(changed_seq, 3u);
        EXPECT_EQ(counts, nullptr);  // scalar entries carry no buckets
      });
  EXPECT_EQ(visited, 1u);
  EXPECT_EQ(upto.value_or(0), 3u);
  // The since-0 walk still reports both entries (b last changed at 1).
  visited = 0;
  (void)registry.for_each_changed_since(
      0, version,
      [&](std::size_t, const std::string&, std::uint64_t, std::uint64_t,
          const std::vector<std::uint64_t>*) { ++visited; });
  EXPECT_EQ(visited, 2u);

  // A stale expected_version (the table grew: indices shifted) refuses
  // the walk instead of reporting now-misaligned indices.
  registry.create("c", {ErrorModel::kExact, 0, 1});
  visited = 0;
  upto = registry.for_each_changed_since(
      0, version,
      [&](std::size_t, const std::string&, std::uint64_t, std::uint64_t,
          const std::vector<std::uint64_t>*) { ++visited; });
  EXPECT_FALSE(upto.has_value());
  EXPECT_EQ(visited, 0u);
}

TEST(Registry, FilteredChangedSinceWalkReportsSubsetPositions) {
  // The service layer's per-subscription delta walk: restricted to a
  // selection of flat-table rows, reporting positions WITHIN the
  // selection (the index space of a filtered wire name table).
  Registry registry(2);
  AnyCounter& a = registry.create("a", {ErrorModel::kExact, 0, 1});
  registry.create("b", {ErrorModel::kExact, 0, 1});
  AnyCounter& c = registry.create("c", {ErrorModel::kExact, 0, 1});
  registry.create("d", {ErrorModel::kExact, 0, 1});

  std::vector<Sample> frame;
  std::uint64_t version = registry.snapshot_all_into_sequenced(0, frame, 0, 1);
  a.increment(0);
  c.increment(0);
  version = registry.snapshot_all_into_sequenced(0, frame, version, 2);

  // Selection {a, c, d} = flat rows {0, 2, 3}; since pass 1 only a and
  // c moved, so subset positions 0 ("a") and 1 ("c") are visited — "d"
  // (position 2) is not, and "b" is invisible to this subscription.
  const std::vector<std::uint64_t> selection = {0, 2, 3};
  std::vector<std::size_t> subset_positions;
  std::vector<std::string> names;
  auto upto = registry.for_each_changed_since_filtered(
      1, version, selection,
      [&](std::size_t subset_index, std::size_t flat_index,
          const std::string& name, std::uint64_t value,
          std::uint64_t changed_seq, const std::vector<std::uint64_t>*) {
        subset_positions.push_back(subset_index);
        names.push_back(name);
        EXPECT_EQ(flat_index, selection[subset_index]);
        EXPECT_EQ(value, 1u);
        EXPECT_EQ(changed_seq, 2u);
      });
  ASSERT_TRUE(upto.has_value());
  EXPECT_EQ(*upto, 2u);
  ASSERT_EQ(subset_positions.size(), 2u);
  EXPECT_EQ(subset_positions[0], 0u);
  EXPECT_EQ(subset_positions[1], 1u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "c");

  // Version guard: a stale expected_version refuses the walk.
  EXPECT_FALSE(registry
                   .for_each_changed_since_filtered(
                       0, version + 1, selection,
                       [&](std::size_t, std::size_t, const std::string&,
                           std::uint64_t, std::uint64_t,
                           const std::vector<std::uint64_t>*) { FAIL(); })
                   .has_value());
  // An out-of-range selection index (built against some other table)
  // refuses too, rather than visiting a misaligned subset.
  const std::vector<std::uint64_t> bogus = {0, 99};
  EXPECT_FALSE(registry
                   .for_each_changed_since_filtered(
                       0, version, bogus,
                       [&](std::size_t, std::size_t, const std::string&,
                           std::uint64_t, std::uint64_t,
                           const std::vector<std::uint64_t>*) { FAIL(); })
                   .has_value());
}

// Minimal in-test instruments for the vector-entry registry contracts
// (the real implementations live in src/stats; the registry only sees
// the erased interfaces, so fakes keep the layering test-local).
class FakeHistogram final : public AnyHistogram {
 public:
  void record(unsigned, std::uint64_t value) override {
    counts_[value < 10 ? 0 : 1] += 1;
  }
  void snapshot_into(unsigned, std::vector<std::uint64_t>& counts) override {
    counts.assign(counts_.begin(), counts_.end());
  }
  void flush(unsigned) override {}
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_bounds()
      const override {
    return bounds_;
  }
  [[nodiscard]] std::uint64_t per_bucket_bound() const override { return 0; }

 private:
  std::vector<std::uint64_t> bounds_ = {10};  // two buckets: ≤10, rest
  std::array<std::uint64_t, 2> counts_ = {0, 0};
};

class FakeTopK final : public AnyTopK {
 public:
  bool update(unsigned, std::string_view label, std::uint64_t value) override {
    auto [it, inserted] = rows_.try_emplace(std::string(label), value);
    if (!inserted && it->second < value) it->second = value;
    return true;
  }
  void snapshot_into(std::vector<std::string>& labels,
                     std::vector<std::uint64_t>& values) override {
    labels.clear();
    values.clear();
    std::vector<std::pair<std::uint64_t, std::string>> ranked;
    for (const auto& [label, value] : rows_) ranked.emplace_back(value, label);
    std::sort(ranked.begin(), ranked.end(), [](const auto& x, const auto& y) {
      return x.first != y.first ? x.first > y.first : x.second < y.second;
    });
    for (const auto& [value, label] : ranked) {
      labels.push_back(label);
      values.push_back(value);
    }
  }
  [[nodiscard]] std::size_t capacity() const override { return 16; }

 private:
  std::map<std::string, std::uint64_t> rows_;
};

TEST(Registry, ReservedPrefixRejectedByPublicEntryPoints) {
  // "__sys/" is the server's namespace: every public get-or-create must
  // refuse it (nullptr, factory never invoked) so an application cannot
  // squat on — or collide with — the self-observability instruments.
  Registry registry(2);
  EXPECT_TRUE(is_reserved_name("__sys/server.ticks"));
  EXPECT_TRUE(is_reserved_name(std::string(kReservedPrefix)));
  EXPECT_FALSE(is_reserved_name("app/requests"));
  EXPECT_FALSE(is_reserved_name("__sysish"));

  EXPECT_EQ(registry.get_or_create("__sys/server.ticks",
                                   {ErrorModel::kAdditive, 4, 1}),
            nullptr);
  bool invoked = false;
  EXPECT_EQ(registry.add_histogram("__sys/h",
                                   [&] {
                                     invoked = true;
                                     return std::make_unique<FakeHistogram>();
                                   }),
            nullptr);
  EXPECT_EQ(registry.add_topk("__sys/t",
                              [&] {
                                invoked = true;
                                return std::make_unique<FakeTopK>();
                              }),
            nullptr);
  EXPECT_FALSE(invoked);
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.lookup("__sys/server.ticks"), nullptr);
}

TEST(Registry, ReservedAddersRequireTheReservedPrefix) {
  // The privileged adders are the mirror image: they accept ONLY
  // reserved names (a non-reserved name through the privileged path
  // would bypass the public kind-collision story) and their entries
  // collect like any other.
  Registry registry(2);
  AnyCounter* gauge = registry.add_counter_reserved(
      "__sys/server.ticks",
      [] {
        return std::make_unique<detail::ErasedSharded<
            core::KAdditiveCounterT, base::InstrumentedBackend>>(
            2u, std::uint64_t{4}, 1u, ShardPolicy::kHashPinned);
      });
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(registry.add_counter_reserved("app/requests", [] {
    return std::unique_ptr<AnyCounter>();
  }),
            nullptr);
  EXPECT_EQ(registry.add_histogram_reserved("app/h", [] {
    return std::make_unique<FakeHistogram>();
  }),
            nullptr);
  EXPECT_EQ(registry.add_topk_reserved("app/t", [] {
    return std::make_unique<FakeTopK>();
  }),
            nullptr);

  // Reserved entries are first-class: looked up, collected, sampled.
  EXPECT_EQ(registry.lookup("__sys/server.ticks"), gauge);
  for (int i = 0; i < 8; ++i) gauge->increment(0);
  gauge->flush(0);
  const auto samples = registry.snapshot_all(1);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].name, "__sys/server.ticks");
  EXPECT_EQ(samples[0].value, 8u);
}

TEST(Registry, TopKEntriesCollectRankedRowsAndDeltas) {
  // A top-k directory is a registry entry kind: snapshot passes carry
  // its ranked rows (labels + values, value the top row's), and the
  // sequenced change tracking hands deltas the row vectors.
  Registry registry(2);
  AnyTopK* talkers =
      registry.add_topk("top_talkers", [] { return std::make_unique<FakeTopK>(); });
  ASSERT_NE(talkers, nullptr);
  // Idempotent: second add returns the same instrument, factory unused.
  EXPECT_EQ(registry.add_topk("top_talkers",
                              []() -> std::unique_ptr<AnyTopK> {
                                ADD_FAILURE() << "factory re-invoked";
                                return nullptr;
                              }),
            talkers);

  talkers->update(0, "10.0.0.1:1", 500);
  talkers->update(0, "10.0.0.2:2", 900);
  talkers->update(0, "10.0.0.3:3", 40);

  std::vector<Sample> frame;
  std::uint64_t version = registry.snapshot_all_into_sequenced(0, frame, 0, 1);
  ASSERT_EQ(frame.size(), 1u);
  EXPECT_EQ(frame[0].model, ErrorModel::kTopK);
  EXPECT_EQ(frame[0].error_bound, 0u);  // max-register rows are exact
  EXPECT_EQ(frame[0].value, 900u);      // the top row
  ASSERT_EQ(frame[0].top_labels.size(), 3u);
  EXPECT_EQ(frame[0].top_labels[0], "10.0.0.2:2");
  ASSERT_EQ(frame[0].bucket_counts.size(), 3u);
  EXPECT_EQ(frame[0].bucket_counts[0], 900u);
  EXPECT_EQ(frame[0].bucket_counts[2], 40u);
  EXPECT_TRUE(frame[0].bucket_bounds.empty());

  // A value bump re-ranks; the changed-since walk reports the fresh row
  // vectors (counts = row values, labels = row labels).
  talkers->update(1, "10.0.0.3:3", 5000);
  version = registry.snapshot_all_into_sequenced(0, frame, version, 2);
  std::size_t visits = 0;
  auto upto = registry.for_each_changed_since(
      1, version,
      [&](std::size_t index, const std::string& name, std::uint64_t value,
          std::uint64_t changed_seq, const std::vector<std::uint64_t>* counts,
          const std::vector<std::string>* labels) {
        ++visits;
        EXPECT_EQ(index, 0u);
        EXPECT_EQ(name, "top_talkers");
        EXPECT_EQ(value, 5000u);
        EXPECT_EQ(changed_seq, 2u);
        ASSERT_NE(counts, nullptr);
        ASSERT_NE(labels, nullptr);
        ASSERT_FALSE(labels->empty());
        EXPECT_EQ((*labels)[0], "10.0.0.3:3");
        EXPECT_EQ((*counts)[0], 5000u);
      });
  ASSERT_TRUE(upto.has_value());
  EXPECT_EQ(visits, 1u);

  // Kind collision: the name cannot be re-taken by another entry kind.
  EXPECT_EQ(registry.get_or_create("top_talkers", {ErrorModel::kExact, 0, 1}),
            nullptr);
  EXPECT_EQ(registry.add_histogram(
                "top_talkers", [] { return std::make_unique<FakeHistogram>(); }),
            nullptr);
}

TEST(Aggregator, SequencedCollectFeedsChangedSinceTracking) {
  // A sequenced aggregator's frames ARE the sequenced passes: a frame's
  // sequence is usable directly as the for_each_changed_since basis.
  Registry registry(2);
  AnyCounter& hits = registry.create("hits", {ErrorModel::kExact, 0, 2});
  Aggregator aggregator(registry, 1, /*sequenced=*/true);
  const TelemetryFrame first = aggregator.collect();
  const TelemetryFrame second = aggregator.collect();  // nothing moved
  std::size_t visited = 0;
  auto upto = registry.for_each_changed_since(
      first.sequence, second.registry_version,
      [&](std::size_t, const std::string&, std::uint64_t, std::uint64_t,
          const std::vector<std::uint64_t>*) { ++visited; });
  EXPECT_EQ(visited, 0u);
  EXPECT_EQ(upto.value_or(0), second.sequence);
  hits.increment(0);
  const TelemetryFrame third = aggregator.collect();
  upto = registry.for_each_changed_since(
      second.sequence, third.registry_version,
      [&](std::size_t index, const std::string& name, std::uint64_t value,
          std::uint64_t changed_seq, const std::vector<std::uint64_t>*) {
        ++visited;
        EXPECT_EQ(index, 0u);
        EXPECT_EQ(name, "hits");
        EXPECT_EQ(value, third.samples[0].value);
        EXPECT_EQ(changed_seq, third.sequence);
      });
  EXPECT_EQ(visited, 1u);
  EXPECT_EQ(upto.value_or(0), third.sequence);
  EXPECT_EQ(third.samples[0].value, 1u);

  // A plain (default) aggregator on the same registry reads through the
  // shared-lock pass and leaves the tracking columns alone — its
  // sequence domain cannot corrupt the sequencer's.
  Aggregator plain(registry, 0);
  hits.increment(0);
  const TelemetryFrame side = plain.collect();
  EXPECT_EQ(side.samples[0].value, 2u);
  visited = 0;
  upto = registry.for_each_changed_since(
      third.sequence, third.registry_version,
      [&](std::size_t, const std::string&, std::uint64_t, std::uint64_t,
          const std::vector<std::uint64_t>*) { ++visited; });
  EXPECT_EQ(visited, 0u);  // the new increment awaits a *sequenced* pass
  EXPECT_EQ(upto.value_or(0), third.sequence);  // last pass seq unmoved
}

TEST(Aggregator, SequencePublicationOrdersPayload) {
  // The release/acquire publication contract: a consumer that observes
  // frames_collected() == N and then calls latest() must see frame N (or
  // newer) — the sequence is released only after the payload store.
  RegistryT<base::DirectBackend> registry(4);
  AnyCounter& counter = registry.create("c", {ErrorModel::kExact, 0, 2});
  AggregatorT<base::DirectBackend> aggregator(registry, 3);

  std::atomic<bool> stop{false};
  std::thread collector([&] {
    unsigned pid = 0;
    while (!stop.load(std::memory_order_acquire)) {
      counter.increment(pid % 2);
      pid += 1;
      aggregator.collect();
    }
  });
  std::uint64_t observed = 0;
  std::uint64_t checks = 0;
  while (checks < 20'000) {
    const std::uint64_t count = aggregator.frames_collected();
    const TelemetryFrame frame = aggregator.latest();
    ASSERT_GE(frame.sequence, count) << "sequence published before payload";
    ASSERT_GE(frame.sequence, observed) << "latest() regressed";
    observed = frame.sequence;
    ++checks;
  }
  stop.store(true, std::memory_order_release);
  collector.join();
}

TEST(Aggregator, PullModeFramesAreSequencedAndSelfDescribing) {
  Registry registry(2);
  AnyCounter& hits =
      registry.create("hits", {ErrorModel::kMultiplicative, 2, 2});
  Aggregator aggregator(registry, 1);
  EXPECT_EQ(aggregator.latest().sequence, 0u);

  for (int i = 0; i < 100; ++i) hits.increment(0);
  const TelemetryFrame first = aggregator.collect();
  EXPECT_EQ(first.sequence, 1u);
  ASSERT_EQ(first.samples.size(), 1u);
  EXPECT_TRUE(core::within_mult_band(first.samples[0].value, 100,
                                     first.samples[0].error_bound));

  for (int i = 0; i < 100; ++i) hits.increment(0);
  const TelemetryFrame second = aggregator.collect();
  EXPECT_EQ(second.sequence, 2u);
  EXPECT_GE(second.samples[0].value, first.samples[0].value);
  EXPECT_EQ(aggregator.latest().sequence, 2u);
  EXPECT_EQ(aggregator.frames_collected(), 2u);
}

TEST(Aggregator, BackgroundModeCollectsWhileWorkersIncrement) {
  // DirectBackend: the background thread is a real thread with its own
  // dedicated pid (3); workers use pids 0..2.
  RegistryT<base::DirectBackend> registry(4);
  registry.create("events", {ErrorModel::kMultiplicative, 2, 2});
  AggregatorT<base::DirectBackend> aggregator(registry, 3);
  aggregator.start(std::chrono::milliseconds(1));

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> exact{0};
  for (unsigned pid = 0; pid < 3; ++pid) {
    workers.emplace_back([&, pid] {
      AnyCounter* counter = registry.lookup("events");
      ASSERT_NE(counter, nullptr);
      while (!stop.load(std::memory_order_acquire)) {
        counter->increment(pid);
        exact.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true, std::memory_order_release);
  for (auto& worker : workers) worker.join();
  aggregator.stop();

  EXPECT_GE(aggregator.frames_collected(), 2u);
  const TelemetryFrame frame = aggregator.latest();
  ASSERT_EQ(frame.samples.size(), 1u);
  // The final frame was collected at some point during the run: within
  // the mult band of some count ≤ the final exact total.
  EXPECT_LE(frame.samples[0].value / 2,
            exact.load(std::memory_order_relaxed) * 2);
  // A fresh post-quiescence collect is banded against the exact total.
  const TelemetryFrame last = aggregator.collect();
  EXPECT_TRUE(core::within_mult_band(last.samples[0].value, exact.load(),
                                     last.samples[0].error_bound));
}

}  // namespace
}  // namespace approx::shard
